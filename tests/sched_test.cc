/**
 * @file
 * Shared-scan scheduler tests: the shared Cost Equation extension, the
 * sharded chunk-location map it leans on, cross-query dedup (shared
 * fetches, merged pushdowns, load shedding) with the sched.* metrics
 * and EXPLAIN reasons they emit, result equivalence against isolated
 * execution, wire-byte savings on overlapping batches, and the
 * determinism contract — scheduler metrics, trace and EXPLAIN output
 * byte-identical across FUSION_THREADS values.
 */
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "query/cost.h"
#include "query/parser.h"
#include "sched/scheduler.h"
#include "sim/cluster.h"
#include "store/fusion_store.h"
#include "workload/lineitem.h"
#include "workload/queries.h"

namespace fusion {
namespace {

// ---------------------------------------------------------------------
// Shared Cost Equation units.
// ---------------------------------------------------------------------

format::ChunkMeta
chunkMeta(uint64_t stored, uint64_t plain)
{
    format::ChunkMeta chunk;
    chunk.storedSize = stored;
    chunk.plainSize = plain;
    return chunk;
}

TEST(SharedCostTest, PushesWhenMergedRepliesBeatOneFetch)
{
    // 3:1 compressed chunk; merged replies of 200 KB vs a 1 MB fetch.
    auto d = query::decideSharedProjectionPushdown(
        200 << 10, chunkMeta(1 << 20, 3 << 20), 0.0, 0.0);
    EXPECT_TRUE(d.push);
    EXPECT_FALSE(d.loadShed);
    EXPECT_LT(d.product(), 1.0);
}

TEST(SharedCostTest, FetchesWhenMergedRepliesExceedStoredSize)
{
    // Many consumers: summed replies outweigh fetching the chunk once.
    auto d = query::decideSharedProjectionPushdown(
        (1 << 20) + 1, chunkMeta(1 << 20, 3 << 20), 0.0, 0.0);
    EXPECT_FALSE(d.push);
    EXPECT_FALSE(d.loadShed);
}

TEST(SharedCostTest, LoadTermOverridesByteMath)
{
    auto d = query::decideSharedProjectionPushdown(
        1 << 10, chunkMeta(1 << 20, 3 << 20), /*outstanding=*/0.5,
        /*limit=*/0.1);
    EXPECT_FALSE(d.push);
    EXPECT_TRUE(d.loadShed);

    // Limit 0 disables the term entirely.
    auto open = query::decideSharedProjectionPushdown(
        1 << 10, chunkMeta(1 << 20, 3 << 20), 0.5, 0.0);
    EXPECT_TRUE(open.push);
}

TEST(SharedCostTest, MergedSelectivityIsUnionOverPlainSize)
{
    auto d = query::decideSharedProjectionPushdown(
        1 << 20, chunkMeta(3 << 20, 4 << 20), 0.0, 0.0);
    EXPECT_DOUBLE_EQ(d.mergedSelectivity, 0.25);
    EXPECT_DOUBLE_EQ(d.compressibility, 4.0 / 3.0);
}

// ---------------------------------------------------------------------
// Sharded chunk-location map.
// ---------------------------------------------------------------------

struct Rig {
    std::unique_ptr<sim::Cluster> cluster;
    std::unique_ptr<store::FusionStore> store;
    format::Table table;
};

Rig
makeRig(size_t rows = 3000, bool observe = false)
{
    Rig rig;
    sim::ClusterConfig config;
    config.numNodes = 9;
    rig.cluster = std::make_unique<sim::Cluster>(config);
    rig.store = std::make_unique<store::FusionStore>(
        *rig.cluster, store::StoreOptions{});
    if (observe) {
        rig.store->obs().tracer.setEnabled(true);
        rig.store->obs().explainEnabled = true;
    }
    auto file = workload::buildLineitemFile(rows, 7);
    FUSION_CHECK(file.isOk());
    rig.table = workload::makeLineitemTable(rows, 7); // same seed = same data
    FUSION_CHECK(rig.store->put("lineitem", file.value().bytes).isOk());
    return rig;
}

TEST(LocationShardTest, NodeShardsCoverEveryBlockExactlyOnce)
{
    Rig rig = makeRig();
    const store::ObjectManifest &m =
        *rig.store->manifest("lineitem").value();

    // Union of all per-node shards == the full placement map, and each
    // shard holds only that node's blocks.
    size_t total = 0;
    for (size_t node = 0; node < rig.cluster->numNodes(); ++node) {
        for (const auto &ref : m.blocksOnNode(node)) {
            EXPECT_EQ(m.stripeNodes[ref.stripe][ref.blockIndex], node);
            EXPECT_NE(
                rig.cluster->node(node).findBlock(
                    m.blockKey(ref.stripe, ref.blockIndex)),
                nullptr);
            ++total;
        }
    }
    size_t stored_blocks = 0;
    for (size_t node = 0; node < rig.cluster->numNodes(); ++node)
        stored_blocks += rig.cluster->node(node).blockCount();
    EXPECT_EQ(total, stored_blocks);
    // Unknown node id: empty shard, no throw.
    EXPECT_TRUE(m.blocksOnNode(10'000).empty());
}

TEST(LocationShardTest, RepairUsesShardAndRestoresAllBlocks)
{
    Rig rig = makeRig();
    const store::ObjectManifest &m =
        *rig.store->manifest("lineitem").value();
    size_t victim = m.stripeNodes[0][0];
    size_t expected = m.blocksOnNode(victim).size();
    ASSERT_GT(expected, 0u);

    rig.cluster->node(victim).wipe();
    auto rebuilt = rig.store->repairNode(victim);
    ASSERT_TRUE(rebuilt.isOk());
    EXPECT_EQ(rebuilt.value(), expected);
    // Repair is idempotent: nothing left to rebuild.
    EXPECT_EQ(rig.store->repairNode(victim).value(), 0u);
}

// ---------------------------------------------------------------------
// Scheduler behaviour.
// ---------------------------------------------------------------------

std::string
resultFingerprint(const query::QueryResult &r)
{
    std::string s = std::to_string(r.rowsMatched) + "|" +
                    std::to_string(r.rowsScanned);
    for (const auto &c : r.columns) {
        // Appended piecewise: GCC 12's -Wrestrict false-positives on
        // the temporary from `"|" + c.name` (PR 105651).
        s += "|";
        s += c.name;
        if (c.isAggregate) {
            s += "=";
            s += std::to_string(c.aggregateValue);
            continue;
        }
        s += ":";
        for (size_t i = 0; i < c.values.size(); ++i) {
            s += c.values.valueAt(i).toString();
            s += ",";
        }
    }
    return s;
}

std::vector<query::Query>
overlappingBatch(const Rig &rig, size_t clients, double overlap)
{
    // The first ceil(overlap * clients) clients issue one shared
    // template; the rest get distinct selectivities and columns.
    std::vector<query::Query> batch;
    size_t shared =
        static_cast<size_t>(overlap * static_cast<double>(clients) + 0.5);
    const format::Schema schema = workload::lineitemSchema();
    auto make = [&](size_t col, double sel) {
        return workload::microbenchQuery("lineitem",
                                         schema.column(col).name,
                                         rig.table.column(col), sel);
    };
    query::Query tmpl = make(workload::kOrderKey, 0.02);
    const size_t cols[] = {workload::kPartKey, workload::kSuppKey,
                           workload::kQuantity,
                           workload::kExtendedPrice};
    for (size_t c = 0; c < clients; ++c) {
        if (c < shared)
            batch.push_back(tmpl);
        else
            batch.push_back(make(cols[c % std::size(cols)],
                                 0.01 + 0.01 * static_cast<double>(c % 4)));
    }
    return batch;
}

uint64_t
totalWireBytes(store::ObjectStore &store)
{
    obs::MetricsRegistry &reg = store.obs().metrics;
    return reg.counter("wire.filter.request_bytes").value() +
           reg.counter("wire.filter.reply_bytes").value() +
           reg.counter("wire.projection.request_bytes").value() +
           reg.counter("wire.projection.reply_bytes").value() +
           reg.counter("wire.client.request_bytes").value() +
           reg.counter("wire.client.reply_bytes").value();
}

TEST(SchedTest, BatchResultsMatchIsolatedExecution)
{
    Rig shared_rig = makeRig();
    Rig solo_rig = makeRig(); // identical build, independent cluster

    auto batch = overlappingBatch(shared_rig, 8, 0.5);
    sched::SharedScanScheduler scheduler(*shared_rig.store);
    auto outcomes = scheduler.runBatch(batch);
    ASSERT_TRUE(outcomes.isOk());
    ASSERT_EQ(outcomes.value().size(), batch.size());

    for (size_t i = 0; i < batch.size(); ++i) {
        auto solo = solo_rig.store->query(batch[i]);
        ASSERT_TRUE(solo.isOk());
        EXPECT_EQ(resultFingerprint(outcomes.value()[i].result),
                  resultFingerprint(solo.value().result))
            << "query " << i;
    }
}

TEST(SchedTest, OverlappingBatchSavesWireBytesAndLatency)
{
    Rig shared_rig = makeRig();
    Rig serial_rig = makeRig();
    auto batch = overlappingBatch(shared_rig, 8, 0.5);

    // Serial baseline: queries one after another; per-query latency is
    // measured from batch start, i.e. cumulative completion time.
    double serial_latency_sum = 0.0, elapsed = 0.0;
    for (const auto &q : batch) {
        auto outcome = serial_rig.store->query(q);
        ASSERT_TRUE(outcome.isOk());
        elapsed += outcome.value().latencySeconds;
        serial_latency_sum += elapsed;
    }
    uint64_t serial_wire = totalWireBytes(*serial_rig.store);

    sched::SharedScanScheduler scheduler(*shared_rig.store);
    auto outcomes = scheduler.runBatch(batch);
    ASSERT_TRUE(outcomes.isOk());
    double shared_latency_sum = 0.0;
    for (const auto &outcome : outcomes.value())
        shared_latency_sum += outcome.latencySeconds;
    uint64_t shared_wire = totalWireBytes(*shared_rig.store);

    EXPECT_LT(shared_wire, serial_wire);
    EXPECT_LT(shared_latency_sum, serial_latency_sum);

    const sched::BatchStats &stats = scheduler.lastBatchStats();
    EXPECT_EQ(stats.queries, batch.size());
    EXPECT_LT(stats.tasksIssued, stats.tasksPlanned);
    EXPECT_GT(stats.sharedFetches + stats.mergedPushdowns, 0u);
    EXPECT_GT(stats.wireBytesSaved, 0u);
    EXPECT_GT(stats.makespanSeconds, 0.0);

    // The same story in the sched.* counters.
    obs::MetricsRegistry &reg = shared_rig.store->obs().metrics;
    EXPECT_EQ(reg.counter("sched.batches").value(), 1u);
    EXPECT_EQ(reg.counter("sched.queries").value(), batch.size());
    EXPECT_EQ(reg.counter("sched.tasks_issued").value(),
              stats.tasksIssued);
}

TEST(SchedTest, MergedPushdownReasonInExplain)
{
    Rig rig = makeRig(3000, /*observe=*/true);
    // Two identical selective queries: their projection pushdowns merge
    // into one storage-node task with a shared reply.
    query::Query q = workload::microbenchQuery(
        "lineitem", "l_orderkey",
        rig.table.column(workload::kOrderKey), 0.02);
    sched::SharedScanScheduler scheduler(*rig.store);
    auto outcomes = scheduler.runBatch({q, q});
    ASSERT_TRUE(outcomes.isOk());

    bool merged_reason = false;
    for (const auto &outcome : outcomes.value()) {
        ASSERT_NE(outcome.explain, nullptr);
        for (const auto &pc : outcome.explain->projections)
            if (pc.reason == "merged-pushdown") {
                merged_reason = true;
                EXPECT_EQ(pc.verdict, "push");
            }
    }
    EXPECT_TRUE(merged_reason);
    EXPECT_GT(scheduler.lastBatchStats().mergedPushdowns, 0u);
}

TEST(SchedTest, OversubscribedNodeShedsLoad)
{
    Rig rig = makeRig(3000, /*observe=*/true);
    query::Query q = workload::microbenchQuery(
        "lineitem", "l_orderkey",
        rig.table.column(workload::kOrderKey), 0.02);

    sched::SchedOptions options;
    options.nodeLoadLimitSeconds = 1e-12; // any admitted work trips it
    sched::SharedScanScheduler scheduler(*rig.store, options);
    auto outcomes = scheduler.runBatch({q, q});
    ASSERT_TRUE(outcomes.isOk());

    EXPECT_GT(scheduler.lastBatchStats().loadSheds, 0u);
    bool shed_reason = false;
    for (const auto &outcome : outcomes.value()) {
        ASSERT_NE(outcome.explain, nullptr);
        for (const auto &pc : outcome.explain->projections)
            if (pc.reason == "load-shed") {
                shed_reason = true;
                EXPECT_EQ(pc.verdict, "fetch");
            }
    }
    EXPECT_TRUE(shed_reason);
    EXPECT_GT(
        rig.store->obs().metrics.counter("sched.load_sheds").value(), 0u);
}

TEST(SchedTest, DedupDisabledIssuesEveryTask)
{
    Rig rig = makeRig();
    auto batch = overlappingBatch(rig, 4, 1.0);
    sched::SchedOptions options;
    options.dedupFetches = false;
    options.mergePushdowns = false;
    sched::SharedScanScheduler scheduler(*rig.store, options);
    auto outcomes = scheduler.runBatch(batch);
    ASSERT_TRUE(outcomes.isOk());
    const sched::BatchStats &stats = scheduler.lastBatchStats();
    EXPECT_EQ(stats.tasksIssued, stats.tasksPlanned);
    EXPECT_EQ(stats.sharedFetches, 0u);
    EXPECT_EQ(stats.mergedPushdowns, 0u);
}

// ---------------------------------------------------------------------
// Interaction with the coordinator hot-chunk cache: batches against a
// warm, cold or mixed cache stay bit-identical to isolated execution,
// and cache-resident chunks never reach the dedup machinery.
// ---------------------------------------------------------------------

Rig
makeCachedRig(uint64_t cache_bytes, size_t rows = 3000)
{
    Rig rig;
    sim::ClusterConfig config;
    config.numNodes = 9;
    rig.cluster = std::make_unique<sim::Cluster>(config);
    store::StoreOptions options;
    options.cacheBytes = cache_bytes;
    rig.store =
        std::make_unique<store::FusionStore>(*rig.cluster, options);
    auto file = workload::buildLineitemFile(rows, 7);
    FUSION_CHECK(file.isOk());
    rig.table = workload::makeLineitemTable(rows, 7);
    FUSION_CHECK(rig.store->put("lineitem", file.value().bytes).isOk());
    return rig;
}

/** Fetch-verdict query (quantity compresses well; high selectivity),
 *  so cold runs admit its chunks into the coordinator cache. */
query::Query
cacheableQuery(const Rig &rig, double selectivity = 0.8)
{
    return workload::microbenchQuery(
        "lineitem", "l_quantity",
        rig.table.column(workload::kQuantity), selectivity);
}

TEST(SchedCacheTest, WarmBatchSkipsDedupAndMatchesIsolatedExecution)
{
    const uint64_t cache_bytes = 64 << 20;
    Rig warm_rig = makeCachedRig(cache_bytes);
    Rig solo_rig = makeCachedRig(cache_bytes);
    query::Query q = cacheableQuery(warm_rig);

    // Cold pass on both rigs admits every projection chunk.
    ASSERT_TRUE(warm_rig.store->query(q).isOk());
    ASSERT_TRUE(solo_rig.store->query(q).isOk());
    ASSERT_GT(warm_rig.store->chunkCache().entryCount(), 0u);
    obs::MetricsRegistry &reg = warm_rig.store->obs().metrics;
    auto storage_wire = [&reg]() {
        return reg.counter("wire.filter.request_bytes").value() +
               reg.counter("wire.filter.reply_bytes").value() +
               reg.counter("wire.projection.request_bytes").value() +
               reg.counter("wire.projection.reply_bytes").value();
    };
    uint64_t storage_wire_before = storage_wire();

    std::vector<query::Query> batch{q, q, q, q};
    sched::SharedScanScheduler scheduler(*warm_rig.store);
    auto outcomes = scheduler.runBatch(batch);
    ASSERT_TRUE(outcomes.isOk());

    for (size_t i = 0; i < batch.size(); ++i) {
        // Every projection chunk is cache-resident: the planner emits
        // unkeyed local tasks, so nothing reaches the dedup table.
        EXPECT_GT(outcomes.value()[i].projectionCachedLocal, 0u);
        EXPECT_EQ(outcomes.value()[i].projectionFetches, 0u);
        EXPECT_EQ(outcomes.value()[i].projectionPushdowns, 0u);
        auto solo = solo_rig.store->query(q);
        ASSERT_TRUE(solo.isOk());
        EXPECT_EQ(resultFingerprint(outcomes.value()[i].result),
                  resultFingerprint(solo.value().result))
            << "query " << i;
    }
    const sched::BatchStats &stats = scheduler.lastBatchStats();
    EXPECT_EQ(stats.sharedFetches, 0u);
    EXPECT_EQ(stats.mergedPushdowns, 0u);
    // A fully warm batch moves no storage traffic at all — the only
    // wire left is the client request/reply exchange.
    EXPECT_EQ(storage_wire(), storage_wire_before);
}

TEST(SchedCacheTest, ColdBatchPopulatesCacheAndLaterMembersHit)
{
    // Serial batch planning warms the cache mid-batch: the first
    // member's fetch verdicts admit the chunks, and every later member
    // of the same batch plans them as cached-local — the dedup table
    // never even sees their movement.
    Rig rig = makeCachedRig(64 << 20);
    query::Query q = cacheableQuery(rig);
    std::vector<query::Query> batch{q, q, q, q};

    sched::SharedScanScheduler scheduler(*rig.store);
    auto outcomes = scheduler.runBatch(batch);
    ASSERT_TRUE(outcomes.isOk());
    EXPECT_GT(outcomes.value()[0].projectionFetches, 0u);
    EXPECT_EQ(outcomes.value()[0].projectionCachedLocal, 0u);
    for (size_t i = 1; i < batch.size(); ++i) {
        EXPECT_GT(outcomes.value()[i].projectionCachedLocal, 0u)
            << "batch member " << i;
        EXPECT_EQ(outcomes.value()[i].projectionFetches, 0u);
        EXPECT_EQ(resultFingerprint(outcomes.value()[i].result),
                  resultFingerprint(outcomes.value()[0].result));
    }
    EXPECT_GT(rig.store->chunkCache().entryCount(), 0u);
}

TEST(SchedCacheTest, ConvertedSharedFetchAdmitsChunksToCache)
{
    // A pusher (selective query) sharing chunks with a fetcher gets
    // converted to ride the shared fetch; the conversion admits the
    // chunk so the next batch plans it cached-local.
    Rig rig = makeCachedRig(64 << 20);
    query::Query pusher = cacheableQuery(rig, 0.02); // push verdict
    query::Query fetcher = cacheableQuery(rig, 0.8); // fetch verdict

    sched::SharedScanScheduler scheduler(*rig.store);
    auto cold = scheduler.runBatch({pusher, fetcher});
    ASSERT_TRUE(cold.isOk());
    EXPECT_GT(scheduler.lastBatchStats().fetchConversions, 0u);
    ASSERT_GT(rig.store->chunkCache().entryCount(), 0u);

    // Both queries now evaluate from the cache, even the one whose
    // Cost Equation said push — residency dominates.
    auto warm = scheduler.runBatch({pusher, fetcher});
    ASSERT_TRUE(warm.isOk());
    for (const auto &outcome : warm.value())
        EXPECT_GT(outcome.projectionCachedLocal, 0u);
    for (size_t i = 0; i < 2; ++i)
        EXPECT_EQ(resultFingerprint(warm.value()[i].result),
                  resultFingerprint(cold.value()[i].result));
}

TEST(SchedCacheTest, MixedCacheStateBatchMatchesIsolatedExecution)
{
    const uint64_t cache_bytes = 64 << 20;
    Rig mixed_rig = makeCachedRig(cache_bytes);
    Rig solo_rig = makeCachedRig(cache_bytes);

    // Warm only the quantity chunks on both rigs.
    ASSERT_TRUE(mixed_rig.store->query(cacheableQuery(mixed_rig)).isOk());
    ASSERT_TRUE(solo_rig.store->query(cacheableQuery(solo_rig)).isOk());

    // Batch mixes warm (quantity) and cold (extendedprice, orderkey)
    // queries; overlap among the cold ones still dedups.
    std::vector<query::Query> batch;
    batch.push_back(cacheableQuery(mixed_rig));
    batch.push_back(workload::microbenchQuery(
        "lineitem", "l_extendedprice",
        mixed_rig.table.column(workload::kExtendedPrice), 0.7));
    batch.push_back(batch.back());
    batch.push_back(workload::microbenchQuery(
        "lineitem", "l_orderkey",
        mixed_rig.table.column(workload::kOrderKey), 0.02));

    sched::SharedScanScheduler scheduler(*mixed_rig.store);
    auto outcomes = scheduler.runBatch(batch);
    ASSERT_TRUE(outcomes.isOk());
    EXPECT_GT(outcomes.value()[0].projectionCachedLocal, 0u);
    EXPECT_EQ(outcomes.value()[3].projectionCachedLocal, 0u);

    for (size_t i = 0; i < batch.size(); ++i) {
        auto solo = solo_rig.store->query(batch[i]);
        ASSERT_TRUE(solo.isOk());
        EXPECT_EQ(resultFingerprint(outcomes.value()[i].result),
                  resultFingerprint(solo.value().result))
            << "query " << i;
    }
}

// ---------------------------------------------------------------------
// Determinism across thread counts.
// ---------------------------------------------------------------------

struct SchedRun {
    std::string metricsJson;
    std::string traceJson;
    std::string explainJson;
};

SchedRun
runSchedWorkload(size_t threads)
{
    ThreadPool::setSharedThreads(threads);
    Rig rig = makeRig(3000, /*observe=*/true);
    auto batch = overlappingBatch(rig, 8, 0.5);
    sched::SharedScanScheduler scheduler(*rig.store);
    auto outcomes = scheduler.runBatch(batch);
    FUSION_CHECK(outcomes.isOk());

    SchedRun run;
    for (const auto &outcome : outcomes.value()) {
        FUSION_CHECK(outcome.explain != nullptr);
        run.explainJson += outcome.explain->toJson();
        run.explainJson += "\n";
    }
    run.metricsJson = rig.store->obs().metrics.snapshot().toJson();
    run.traceJson = rig.store->obs().tracer.toChromeJson("fusion");
    ThreadPool::setSharedThreads(1);
    return run;
}

TEST(SchedDeterminismTest, ByteIdenticalAcrossThreadCounts)
{
    SchedRun serial = runSchedWorkload(1);
    EXPECT_NE(serial.traceJson.find("\"shared_scan\""), std::string::npos);
    EXPECT_NE(serial.traceJson.find("\"sched_wait\""), std::string::npos);
    EXPECT_NE(serial.metricsJson.find("sched.batches"),
              std::string::npos);

    for (size_t threads : {2, 4}) {
        SchedRun other = runSchedWorkload(threads);
        EXPECT_EQ(serial.metricsJson, other.metricsJson)
            << "metrics diverged at FUSION_THREADS=" << threads;
        EXPECT_EQ(serial.traceJson, other.traceJson)
            << "trace diverged at FUSION_THREADS=" << threads;
        EXPECT_EQ(serial.explainJson, other.explainJson)
            << "EXPLAIN diverged at FUSION_THREADS=" << threads;
    }
}

TEST(SchedDeterminismTest, RepeatRunsAreByteIdentical)
{
    SchedRun a = runSchedWorkload(1);
    SchedRun b = runSchedWorkload(1);
    EXPECT_EQ(a.metricsJson, b.metricsJson);
    EXPECT_EQ(a.traceJson, b.traceJson);
    EXPECT_EQ(a.explainJson, b.explainJson);
}

} // namespace
} // namespace fusion
