# Empty dependencies file for bench_ablation_nk.
# This may be replaced when dependencies are built.
