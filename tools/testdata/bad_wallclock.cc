// Fixture: each line tagged `BAD: <rule>` must produce exactly that
// finding; untagged lines must produce none.
#include <chrono>
#include <ctime>

double
elapsed()
{
    auto t0 = std::chrono::steady_clock::now();          // BAD: wallclock
    auto t1 = std::chrono::high_resolution_clock::now(); // BAD: wallclock
    auto wall = std::chrono::system_clock::now();        // BAD: wallclock
    (void)wall;
    std::time_t raw = time(nullptr); // BAD: wallclock
    (void)clock();                   // BAD: wallclock
    (void)raw;
    return std::chrono::duration<double>(t1 - t0).count();
}

// Identifiers that merely contain a banned name must NOT match:
int steady_clock_count = 0; // ok: distinct identifier
int my_time = 0;            // ok: 'time' not followed by '('
void timer() {}             // ok: different identifier
// steady_clock in a comment is fine, as is "steady_clock" below:
const char *label = "steady_clock";
