file(REMOVE_RECURSE
  "CMakeFiles/bench_fig04d_padding.dir/bench_fig04d_padding.cpp.o"
  "CMakeFiles/bench_fig04d_padding.dir/bench_fig04d_padding.cpp.o.d"
  "bench_fig04d_padding"
  "bench_fig04d_padding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04d_padding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
