/**
 * @file
 * Systematic Reed-Solomon erasure coding for arbitrary (n, k) with
 * n <= 256. The encoding matrix is derived from a Vandermonde matrix
 * normalized so its top k rows are the identity (data blocks are stored
 * in plaintext — a prerequisite for computation pushdown, see paper §7).
 *
 * Variable-size blocks: a stripe's blocks are implicitly zero-extended
 * to the stripe's block size (the largest data block). Parity blocks
 * always have the full block size — this is exactly the storage
 * overhead FAC's bin packing minimizes.
 */
#ifndef FUSION_EC_REED_SOLOMON_H
#define FUSION_EC_REED_SOLOMON_H

#include <optional>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "matrix.h"

namespace fusion::ec {

/** Reusable encoder/decoder for one (n, k) configuration. */
class ReedSolomon
{
  public:
    /** Builds the systematic code; kInvalidArgument on bad (n, k). */
    static Result<ReedSolomon> create(size_t n, size_t k);

    size_t n() const { return n_; }
    size_t k() const { return k_; }
    size_t parityCount() const { return n_ - k_; }

    /** Most simultaneous block losses the code tolerates. */
    size_t maxErasures() const { return n_ - k_; }

    /** True when a stripe with `survivors` present shards can still be
     *  rebuilt — the degraded-read feasibility test. */
    bool recoverable(size_t survivors) const { return survivors >= k_; }

    /**
     * Computes the (n - k) parity blocks for k data blocks of possibly
     * different sizes. Every parity block has size equal to the largest
     * data block (shorter data blocks are treated as zero-extended).
     */
    std::vector<Bytes> encodeParity(
        const std::vector<Slice> &data_blocks) const;

    /**
     * Recovers all n blocks of a stripe given at least k survivors.
     * `shards[i]` holds block i (zero-extended to `block_size`) or
     * nullopt if lost. On success every entry is filled in.
     */
    Status reconstruct(std::vector<std::optional<Bytes>> &shards,
                       size_t block_size) const;

    const Matrix &encodingMatrix() const { return matrix_; }

  private:
    ReedSolomon(size_t n, size_t k, Matrix matrix)
        : n_(n), k_(k), matrix_(std::move(matrix))
    {
    }

    size_t n_;
    size_t k_;
    Matrix matrix_; // n x k; top k rows are the identity
};

/** One erasure-coded stripe: n blocks plus the true data-block sizes. */
struct Stripe {
    std::vector<Bytes> blocks;      // k data blocks then n-k parity blocks
    std::vector<uint64_t> dataSizes; // true (unpadded) size of each data blk
    uint64_t blockSize = 0;          // stripe block size = max data size

    uint64_t
    parityBytes() const
    {
        return blockSize * (blocks.size() - dataSizes.size());
    }
};

/**
 * Encodes k variable-size data blocks into a stripe. Data blocks are
 * stored at their true size (no physical padding); parity blocks have
 * the stripe block size.
 */
Result<Stripe> encodeStripe(const ReedSolomon &rs,
                            std::vector<Bytes> data_blocks);

/**
 * Recovers the k data blocks (at true sizes) from any >= k surviving
 * shards of a stripe. Survivor data blocks may be passed at true size;
 * they are zero-extended internally.
 */
Result<std::vector<Bytes>> recoverStripeData(
    const ReedSolomon &rs, std::vector<std::optional<Bytes>> shards,
    const std::vector<uint64_t> &data_sizes, uint64_t block_size);

} // namespace fusion::ec

#endif // FUSION_EC_REED_SOLOMON_H
