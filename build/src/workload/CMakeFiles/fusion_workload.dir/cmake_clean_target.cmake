file(REMOVE_RECURSE
  "libfusion_workload.a"
)
