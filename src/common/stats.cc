#include "stats.h"

#include <algorithm>
#include <cmath>

#include "status.h"

namespace fusion {

void
SampleHistogram::ensureSorted() const
{
    if (!sorted_) {
        std::sort(samples_.begin(), samples_.end());
        sorted_ = true;
    }
}

double
SampleHistogram::sum() const
{
    double s = 0.0;
    for (double v : samples_)
        s += v;
    return s;
}

double
SampleHistogram::mean() const
{
    return samples_.empty() ? 0.0 : sum() / samples_.size();
}

double
SampleHistogram::min() const
{
    FUSION_CHECK(!samples_.empty());
    ensureSorted();
    return samples_.front();
}

double
SampleHistogram::max() const
{
    FUSION_CHECK(!samples_.empty());
    ensureSorted();
    return samples_.back();
}

double
SampleHistogram::percentile(double p) const
{
    FUSION_CHECK(!samples_.empty());
    FUSION_CHECK(p >= 0.0 && p <= 100.0);
    ensureSorted();
    if (p <= 0.0)
        return samples_.front();
    size_t rank = static_cast<size_t>(
        std::ceil(p / 100.0 * static_cast<double>(samples_.size())));
    if (rank == 0)
        rank = 1;
    if (rank > samples_.size())
        rank = samples_.size();
    return samples_[rank - 1];
}

double
SampleHistogram::percentileInterpolated(double p) const
{
    FUSION_CHECK(p >= 0.0 && p <= 100.0);
    if (samples_.empty())
        return 0.0;
    ensureSorted();
    if (samples_.size() == 1)
        return samples_.front();
    double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
    size_t lo = static_cast<size_t>(rank);
    if (lo + 1 >= samples_.size())
        return samples_.back();
    double frac = rank - static_cast<double>(lo);
    return samples_[lo] + frac * (samples_[lo + 1] - samples_[lo]);
}

double
StreamingStats::stddev() const
{
    return std::sqrt(variance());
}

} // namespace fusion
