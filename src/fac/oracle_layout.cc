#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/walltime.h"
#include "constructors.h"

namespace fusion::fac {

namespace {

/**
 * Calibration rate converting the public time budget into a
 * deterministic search-node budget. A wall-clock deadline here would
 * make the chosen layout depend on machine speed and scheduling noise
 * — the exact hazard class fusion-lint's `wallclock` rule bans — so
 * the solver counts node expansions instead: same input + same budget
 * => bit-identical layout everywhere. The rate is deliberately below
 * the solver's real speed (~50M trivial nodes/s) so budgets behave
 * like conservative Gurobi-style time limits.
 */
constexpr double kNodesPerBudgetSecond = 20e6;

/**
 * Exact solver for the paper's ILP (Eq. 1): minimise the sum over bin
 * sets of the largest bin load, subject to bin capacity C (the largest
 * chunk size) and m = ceil(N/k) available bin sets.
 *
 * Branch and bound over items in descending size order, seeded with the
 * FAC greedy solution as the incumbent. Symmetry is broken by trying at
 * most one bin per distinct load within a bin set and at most one fully
 * empty bin set. The cost-so-far is monotone in item placement, which
 * is the pruning bound. This mirrors what the Gurobi oracle in the
 * paper computes, including its exponential behaviour (Fig 10a).
 */
class OracleSolver
{
  public:
    OracleSolver(const std::vector<ChunkExtent> &chunks, size_t k,
                 double time_limit_seconds)
        : chunks_(chunks), k_(k),
          nodeBudget_(static_cast<uint64_t>(std::llround(
              std::max(1.0, time_limit_seconds * kNodesPerBudgetSecond))))
    {
        order_.resize(chunks.size());
        std::iota(order_.begin(), order_.end(), 0);
        std::stable_sort(order_.begin(), order_.end(),
                         [&](size_t a, size_t b) {
                             return chunks[a].size > chunks[b].size;
                         });
        capacity_ = chunks_.empty() ? 0 : chunks_[order_[0]].size;
        numBinsets_ = (chunks.size() + k - 1) / k;
        loads_.assign(numBinsets_, std::vector<uint64_t>(k, 0));
        binsetMax_.assign(numBinsets_, 0);
        assignment_.assign(chunks.size(), {0, 0});
    }

    /** Runs the search; returns true if proven optimal. */
    bool
    solve(ObjectLayout seed, uint64_t &nodes_out)
    {
        bestCost_ = seedCost(seed);
        bestLayout_ = std::move(seed);
        timedOut_ = false;
        nodes_ = 0;
        recurse(0, 0);
        nodes_out = nodes_;
        return !timedOut_;
    }

    const ObjectLayout &bestLayout() const { return bestLayout_; }

  private:
    uint64_t
    seedCost(const ObjectLayout &layout) const
    {
        uint64_t cost = 0;
        for (const auto &stripe : layout.stripes)
            cost += stripe.blockSize();
        return cost;
    }

    void
    recurse(size_t item_pos, uint64_t cost)
    {
        if (timedOut_ || cost >= bestCost_)
            return;
        if (++nodes_ > nodeBudget_) {
            timedOut_ = true;
            return;
        }
        if (item_pos == order_.size()) {
            bestCost_ = cost;
            recordBest();
            return;
        }

        const uint64_t size = chunks_[order_[item_pos]].size;
        bool tried_empty_binset = false;
        for (size_t l = 0; l < numBinsets_; ++l) {
            bool binset_empty = binsetMax_[l] == 0;
            if (binset_empty) {
                if (tried_empty_binset)
                    continue; // all empty bin sets are equivalent
                tried_empty_binset = true;
            }
            uint64_t seen_loads[64];
            size_t seen_count = 0;
            for (size_t j = 0; j < k_; ++j) {
                uint64_t load = loads_[l][j];
                if (load + size > capacity_)
                    continue;
                // Equal-load bins within a bin set are interchangeable.
                bool dup = false;
                for (size_t s = 0; s < seen_count; ++s)
                    dup |= (seen_loads[s] == load);
                if (dup)
                    continue;
                if (seen_count < 64)
                    seen_loads[seen_count++] = load;

                uint64_t old_max = binsetMax_[l];
                uint64_t new_max = std::max(old_max, load + size);
                uint64_t new_cost = cost - old_max + new_max;

                loads_[l][j] = load + size;
                binsetMax_[l] = new_max;
                assignment_[item_pos] = {l, j};
                recurse(item_pos + 1, new_cost);
                loads_[l][j] = load;
                binsetMax_[l] = old_max;
                if (timedOut_)
                    return;
            }
        }
    }

    void
    recordBest()
    {
        ObjectLayout layout;
        layout.kind = LayoutKind::kOracle;
        layout.n = 0; // caller fills n/k
        layout.k = k_;
        std::vector<StripeLayout> stripes(numBinsets_);
        for (auto &stripe : stripes)
            stripe.dataBlocks.resize(k_);
        for (size_t pos = 0; pos < order_.size(); ++pos) {
            auto [l, j] = assignment_[pos];
            const ChunkExtent &chunk = chunks_[order_[pos]];
            stripes[l].dataBlocks[j].pieces.push_back(
                {chunk.id, 0, chunk.size});
        }
        for (auto &stripe : stripes) {
            // Compact away empty bins; drop fully empty bin sets.
            auto &blocks = stripe.dataBlocks;
            blocks.erase(std::remove_if(blocks.begin(), blocks.end(),
                                        [](const DataBlockLayout &b) {
                                            return b.pieces.empty();
                                        }),
                         blocks.end());
            if (!blocks.empty())
                layout.stripes.push_back(std::move(stripe));
        }
        bestLayout_ = std::move(layout);
    }

    const std::vector<ChunkExtent> &chunks_;
    size_t k_;
    uint64_t nodeBudget_;
    std::vector<size_t> order_;
    uint64_t capacity_ = 0;
    size_t numBinsets_ = 0;
    std::vector<std::vector<uint64_t>> loads_;
    std::vector<uint64_t> binsetMax_;
    std::vector<std::pair<size_t, size_t>> assignment_;
    uint64_t bestCost_ = 0;
    ObjectLayout bestLayout_;
    bool timedOut_ = false;
    uint64_t nodes_ = 0;
};

} // namespace

OracleResult
buildOracleLayout(const std::vector<ChunkExtent> &chunks, size_t n, size_t k,
                  double time_limit_seconds)
{
    double start = walltime::monotonicSeconds();

    OracleResult result;
    if (chunks.empty()) {
        result.layout.kind = LayoutKind::kOracle;
        result.layout.n = n;
        result.layout.k = k;
        result.optimal = true;
        return result;
    }

    OracleSolver solver(chunks, k, time_limit_seconds);
    ObjectLayout seed = buildFacLayout(chunks, n, k);
    uint64_t nodes = 0;
    result.optimal = solver.solve(std::move(seed), nodes);
    result.nodesExplored = nodes;
    result.layout = solver.bestLayout();
    result.layout.kind = LayoutKind::kOracle;
    result.layout.n = n;
    result.layout.k = k;
    result.layout.dataBytes = 0;
    for (const auto &chunk : chunks)
        result.layout.dataBytes += chunk.size;

    result.solveSeconds = walltime::monotonicSeconds() - start;
    return result;
}

} // namespace fusion::fac
