/**
 * @file
 * Coordinator hot-chunk cache tests: SIEVE admission/eviction order
 * against hand-computed traces, byte-capacity accounting under mixed
 * chunk sizes, edge cases (zero capacity, single entry, exact fit,
 * oversized rejection), cache.* counter correctness, store-level
 * admission on fetch verdicts with the Cost-Equation flip to
 * "cached-local", survival across dropCaches(), and the determinism
 * contract — identical hit/miss/eviction sequences and byte-identical
 * metrics at FUSION_THREADS=1/2/4.
 */
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "cache/chunk_cache.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "query/parser.h"
#include "sim/cluster.h"
#include "store/fusion_store.h"
#include "workload/lineitem.h"
#include "workload/queries.h"

namespace fusion {
namespace {

// ---------------------------------------------------------------------
// SIEVE unit tests.
// ---------------------------------------------------------------------

std::shared_ptr<const Bytes>
blob(size_t size, uint8_t fill = 0xAB)
{
    return std::make_shared<Bytes>(size, fill);
}

std::vector<uint32_t>
residentChunks(const cache::ChunkCache &c, const std::string &object)
{
    std::vector<uint32_t> ids;
    for (const auto &key : c.residentKeys())
        if (key.first == object)
            ids.push_back(key.second);
    return ids;
}

TEST(CacheUnitTest, ZeroCapacityCacheIsDisabled)
{
    cache::ChunkCache c(0);
    EXPECT_FALSE(c.enabled());
    EXPECT_FALSE(c.admit("o", 0, blob(1)));
    EXPECT_FALSE(c.contains("o", 0));
    EXPECT_EQ(c.sizeBytes(), 0u);
    EXPECT_EQ(c.entryCount(), 0u);
    EXPECT_EQ(c.evictions(), 0u);
}

TEST(CacheUnitTest, AdmitAndLookupRoundTrip)
{
    cache::ChunkCache c(100);
    auto bytes = blob(40, 0x17);
    ASSERT_TRUE(c.admit("o", 3, bytes));
    EXPECT_EQ(c.sizeBytes(), 40u);
    EXPECT_EQ(c.entryCount(), 1u);

    auto found = c.lookup("o", 3);
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found.get(), bytes.get()); // same buffer, not a copy
    EXPECT_EQ(c.lookup("o", 4), nullptr);
    EXPECT_EQ(c.lookup("other", 3), nullptr);
    EXPECT_EQ(c.hits(), 1u);
    EXPECT_EQ(c.misses(), 2u);
}

TEST(CacheUnitTest, ByteCapacityAccountingUnderMixedChunkSizes)
{
    cache::ChunkCache c(100);
    ASSERT_TRUE(c.admit("o", 0, blob(10)));
    ASSERT_TRUE(c.admit("o", 1, blob(30)));
    ASSERT_TRUE(c.admit("o", 2, blob(60))); // exactly full
    EXPECT_EQ(c.sizeBytes(), 100u);
    EXPECT_EQ(c.entryCount(), 3u);
    EXPECT_EQ(c.evictions(), 0u);

    // One more byte of demand evicts from the tail until it fits: the
    // 25-byte admission only needs chunk 0 (10) and chunk 1 (30) gone.
    ASSERT_TRUE(c.admit("o", 3, blob(25)));
    EXPECT_EQ(c.evictions(), 2u);
    EXPECT_EQ(c.sizeBytes(), 85u);
    EXPECT_EQ(residentChunks(c, "o"), (std::vector<uint32_t>{3, 2}));
}

TEST(CacheUnitTest, ExactFitAndSingleEntryEviction)
{
    cache::ChunkCache c(100);
    ASSERT_TRUE(c.admit("o", 0, blob(100))); // exact fit
    EXPECT_EQ(c.sizeBytes(), 100u);
    // The next exact-fit admission must evict the only entry.
    ASSERT_TRUE(c.admit("o", 1, blob(100)));
    EXPECT_EQ(c.evictions(), 1u);
    EXPECT_EQ(c.sizeBytes(), 100u);
    EXPECT_FALSE(c.contains("o", 0));
    EXPECT_TRUE(c.contains("o", 1));
}

TEST(CacheUnitTest, OversizedChunkRejectedWithoutEviction)
{
    cache::ChunkCache c(100);
    ASSERT_TRUE(c.admit("o", 0, blob(50)));
    EXPECT_FALSE(c.admit("o", 1, blob(101)));
    EXPECT_EQ(c.evictions(), 0u);
    EXPECT_TRUE(c.contains("o", 0));
    // Empty payloads are rejected too.
    EXPECT_FALSE(c.admit("o", 2, std::make_shared<Bytes>()));
}

TEST(CacheUnitTest, SieveEvictsOldestUnvisitedAndSparesVisited)
{
    // Hand-computed trace. Queue is written newest-first below.
    cache::ChunkCache c(120);
    ASSERT_TRUE(c.admit("o", 0, blob(40))); // [0]
    ASSERT_TRUE(c.admit("o", 1, blob(40))); // [1 0]
    ASSERT_TRUE(c.admit("o", 2, blob(40))); // [2 1 0], full
    ASSERT_NE(c.lookup("o", 0), nullptr);   // chunk 0 visited

    // Admit 3: the hand starts at the tail (0), spares it because it
    // was visited (clearing the bit), and evicts 1 — the oldest
    // unvisited entry.
    ASSERT_TRUE(c.admit("o", 3, blob(40))); // [3 2 0]
    EXPECT_EQ(c.evictions(), 1u);
    EXPECT_FALSE(c.contains("o", 1));
    EXPECT_EQ(residentChunks(c, "o"), (std::vector<uint32_t>{3, 2, 0}));
}

TEST(CacheUnitTest, HandResumesWhereThePreviousScanStopped)
{
    // Continue the trace above: after sparing 0 and evicting 1 the
    // hand rests on 2, so the next eviction takes 2 even though 0 is
    // older — its visited bit was already spent.
    cache::ChunkCache c(120);
    ASSERT_TRUE(c.admit("o", 0, blob(40)));
    ASSERT_TRUE(c.admit("o", 1, blob(40)));
    ASSERT_TRUE(c.admit("o", 2, blob(40)));
    ASSERT_NE(c.lookup("o", 0), nullptr);
    ASSERT_TRUE(c.admit("o", 3, blob(40))); // evicts 1, hand on 2

    ASSERT_TRUE(c.admit("o", 4, blob(40))); // evicts 2
    EXPECT_EQ(c.evictions(), 2u);
    EXPECT_FALSE(c.contains("o", 2));
    EXPECT_EQ(residentChunks(c, "o"), (std::vector<uint32_t>{4, 3, 0}));
}

TEST(CacheUnitTest, HandPassClearsEveryVisitedBitThenWrapsToTail)
{
    cache::ChunkCache c(120);
    ASSERT_TRUE(c.admit("o", 0, blob(40)));
    ASSERT_TRUE(c.admit("o", 1, blob(40)));
    ASSERT_TRUE(c.admit("o", 2, blob(40)));
    // Every entry visited: the hand clears all three bits, wraps off
    // the head back to the tail and evicts the oldest entry.
    ASSERT_NE(c.lookup("o", 0), nullptr);
    ASSERT_NE(c.lookup("o", 1), nullptr);
    ASSERT_NE(c.lookup("o", 2), nullptr);
    ASSERT_TRUE(c.admit("o", 3, blob(40)));
    EXPECT_EQ(c.evictions(), 1u);
    EXPECT_FALSE(c.contains("o", 0));
    EXPECT_EQ(residentChunks(c, "o"), (std::vector<uint32_t>{3, 2, 1}));
}

TEST(CacheUnitTest, ReAdmissionMarksVisitedInsteadOfDuplicating)
{
    cache::ChunkCache c(120);
    ASSERT_TRUE(c.admit("o", 0, blob(40)));
    ASSERT_TRUE(c.admit("o", 1, blob(40)));
    ASSERT_TRUE(c.admit("o", 2, blob(40)));
    // Re-admit 0 (null payload allowed for a resident key): no size
    // change, but 0 now survives the next hand pass like a lookup hit.
    ASSERT_TRUE(c.admit("o", 0, nullptr));
    EXPECT_EQ(c.sizeBytes(), 120u);
    EXPECT_EQ(c.entryCount(), 3u);
    ASSERT_TRUE(c.admit("o", 3, blob(40)));
    EXPECT_TRUE(c.contains("o", 0));
    EXPECT_FALSE(c.contains("o", 1));
}

TEST(CacheUnitTest, InvalidateRemovesEntryAndKeepsEvictionOrderSane)
{
    cache::ChunkCache c(120);
    ASSERT_TRUE(c.admit("o", 0, blob(40)));
    ASSERT_TRUE(c.admit("o", 1, blob(40)));
    ASSERT_TRUE(c.admit("o", 2, blob(40)));
    c.invalidate("o", 1);
    EXPECT_EQ(c.sizeBytes(), 80u);
    c.invalidate("o", 9); // absent: no-op
    EXPECT_EQ(c.entryCount(), 2u);
    EXPECT_EQ(c.evictions(), 0u); // invalidation is not an eviction

    // Eviction still works after the middle of the queue vanished.
    ASSERT_TRUE(c.admit("o", 3, blob(80)));
    EXPECT_EQ(c.evictions(), 1u);
    EXPECT_FALSE(c.contains("o", 0));
}

TEST(CacheUnitTest, InvalidateObjectDropsOnlyThatObject)
{
    cache::ChunkCache c(1000);
    ASSERT_TRUE(c.admit("a", 0, blob(10)));
    ASSERT_TRUE(c.admit("a", 1, blob(10)));
    ASSERT_TRUE(c.admit("ab", 0, blob(10))); // prefix, distinct object
    ASSERT_TRUE(c.admit("b", 0, blob(10)));
    c.invalidateObject("a");
    EXPECT_FALSE(c.contains("a", 0));
    EXPECT_FALSE(c.contains("a", 1));
    EXPECT_TRUE(c.contains("ab", 0));
    EXPECT_TRUE(c.contains("b", 0));
    EXPECT_EQ(c.sizeBytes(), 20u);
}

TEST(CacheUnitTest, ClearDropsEntriesButKeepsTallies)
{
    cache::ChunkCache c(100);
    ASSERT_TRUE(c.admit("o", 0, blob(60)));
    ASSERT_NE(c.lookup("o", 0), nullptr);
    ASSERT_TRUE(c.admit("o", 1, blob(60))); // evicts 0
    c.clear();
    EXPECT_EQ(c.entryCount(), 0u);
    EXPECT_EQ(c.sizeBytes(), 0u);
    EXPECT_EQ(c.hits(), 1u);
    EXPECT_EQ(c.evictions(), 1u);
    // Still usable after clear.
    ASSERT_TRUE(c.admit("o", 2, blob(60)));
    EXPECT_TRUE(c.contains("o", 2));
}

TEST(CacheUnitTest, DecodedLayerRidesAlongWithResidency)
{
    cache::ChunkCache c(100);
    auto decoded = std::make_shared<format::ColumnData>();
    c.attachDecoded("o", 0, decoded); // not resident: no-op
    EXPECT_EQ(c.decoded("o", 0), nullptr);

    ASSERT_TRUE(c.admit("o", 0, blob(50)));
    c.attachDecoded("o", 0, decoded);
    EXPECT_EQ(c.decoded("o", 0).get(), decoded.get());
    // Only raw bytes count against capacity.
    EXPECT_EQ(c.sizeBytes(), 50u);

    c.invalidate("o", 0);
    EXPECT_EQ(c.decoded("o", 0), nullptr);
}

TEST(CacheUnitTest, BoundCountersMirrorHandComputedTrace)
{
    obs::MetricsRegistry reg;
    cache::ChunkCache c(120);
    c.bindMetrics(&reg.counter("cache.chunk.hits"),
                  &reg.counter("cache.chunk.misses"),
                  &reg.counter("cache.chunk.evictions"),
                  &reg.gauge("cache.chunk.bytes"));

    ASSERT_TRUE(c.admit("o", 0, blob(40)));
    ASSERT_TRUE(c.admit("o", 1, blob(40)));
    ASSERT_NE(c.lookup("o", 0), nullptr);   // hit
    EXPECT_EQ(c.lookup("o", 7), nullptr);   // miss
    ASSERT_TRUE(c.admit("o", 2, blob(40))); // full, no eviction
    ASSERT_TRUE(c.admit("o", 3, blob(40))); // spares 0, evicts 1

    // Hand-computed: 1 hit, 1 miss, 1 eviction, 120 resident bytes.
    EXPECT_EQ(reg.counter("cache.chunk.hits").value(), 1u);
    EXPECT_EQ(reg.counter("cache.chunk.misses").value(), 1u);
    EXPECT_EQ(reg.counter("cache.chunk.evictions").value(), 1u);
    EXPECT_EQ(reg.gauge("cache.chunk.bytes").value(), 120.0);
    // Registry instruments mirror the local tallies exactly.
    EXPECT_EQ(reg.counter("cache.chunk.hits").value(), c.hits());
    EXPECT_EQ(reg.counter("cache.chunk.misses").value(), c.misses());
    EXPECT_EQ(reg.counter("cache.chunk.evictions").value(),
              c.evictions());
    EXPECT_EQ(reg.gauge("cache.chunk.bytes").value(),
              static_cast<double>(c.sizeBytes()));
}

// ---------------------------------------------------------------------
// Store-level behaviour: admission on fetch verdicts, the
// "cached-local" flip, and survival across dropCaches().
// ---------------------------------------------------------------------

struct Rig {
    std::unique_ptr<sim::Cluster> cluster;
    std::unique_ptr<store::FusionStore> store;
    format::Table table;
};

Rig
makeRig(uint64_t cache_bytes, size_t rows = 3000)
{
    Rig rig;
    sim::ClusterConfig config;
    config.numNodes = 9;
    rig.cluster = std::make_unique<sim::Cluster>(config);
    store::StoreOptions options;
    options.cacheBytes = cache_bytes;
    rig.store =
        std::make_unique<store::FusionStore>(*rig.cluster, options);
    auto file = workload::buildLineitemFile(rows, 7);
    FUSION_CHECK(file.isOk());
    rig.table = workload::makeLineitemTable(rows, 7);
    FUSION_CHECK(rig.store->put("lineitem", file.value().bytes).isOk());
    return rig;
}

/** A query whose projection chunks get a fetch verdict (high
 *  selectivity x the quantity column's high compressibility), so the
 *  planner admits them into the coordinator cache. */
query::Query
fetchVerdictQuery(const Rig &rig, double selectivity = 0.8)
{
    return workload::microbenchQuery(
        "lineitem", "l_quantity",
        rig.table.column(workload::kQuantity), selectivity);
}

uint64_t
totalWireBytes(store::ObjectStore &store)
{
    obs::MetricsRegistry &reg = store.obs().metrics;
    return reg.counter("wire.filter.request_bytes").value() +
           reg.counter("wire.filter.reply_bytes").value() +
           reg.counter("wire.projection.request_bytes").value() +
           reg.counter("wire.projection.reply_bytes").value() +
           reg.counter("wire.client.request_bytes").value() +
           reg.counter("wire.client.reply_bytes").value();
}

TEST(CacheStoreTest, FetchVerdictAdmitsAndRepeatQueryGoesCachedLocal)
{
    Rig rig = makeRig(64 << 20);
    query::Query q = fetchVerdictQuery(rig);

    auto first = rig.store->query(q);
    ASSERT_TRUE(first.isOk());
    EXPECT_GT(first.value().projectionFetches, 0u);
    EXPECT_EQ(first.value().projectionCachedLocal, 0u);
    EXPECT_GT(rig.store->chunkCache().entryCount(), 0u);
    uint64_t wire_first = totalWireBytes(*rig.store);

    auto second = rig.store->query(q);
    ASSERT_TRUE(second.isOk());
    EXPECT_GT(second.value().projectionCachedLocal, 0u);
    EXPECT_EQ(second.value().projectionFetches, 0u);
    // Identical real results either way.
    EXPECT_EQ(second.value().result.rowsMatched,
              first.value().result.rowsMatched);
    // The repeat query moved strictly fewer bytes.
    uint64_t wire_second = totalWireBytes(*rig.store) - wire_first;
    EXPECT_LT(wire_second, wire_first);
    EXPECT_GT(rig.store->obs().metrics.counter("cache.chunk.hits").value(),
              0u);
}

TEST(CacheStoreTest, DisabledCacheNeverAdmitsOrCounts)
{
    Rig rig = makeRig(0);
    query::Query q = fetchVerdictQuery(rig);
    ASSERT_TRUE(rig.store->query(q).isOk());
    auto second = rig.store->query(q);
    ASSERT_TRUE(second.isOk());
    EXPECT_EQ(second.value().projectionCachedLocal, 0u);
    EXPECT_EQ(rig.store->chunkCache().entryCount(), 0u);
    obs::MetricsRegistry &reg = rig.store->obs().metrics;
    EXPECT_EQ(reg.counter("cache.chunk.hits").value(), 0u);
    EXPECT_EQ(reg.counter("cache.chunk.misses").value(), 0u);
}

TEST(CacheStoreTest, ChunkCacheSurvivesDropCaches)
{
    Rig rig = makeRig(64 << 20);
    ASSERT_TRUE(rig.store->query(fetchVerdictQuery(rig)).isOk());
    size_t resident = rig.store->chunkCache().entryCount();
    ASSERT_GT(resident, 0u);
    rig.store->dropCaches();
    EXPECT_EQ(rig.store->chunkCache().entryCount(), resident);

    auto repeat = rig.store->query(fetchVerdictQuery(rig));
    ASSERT_TRUE(repeat.isOk());
    EXPECT_GT(repeat.value().projectionCachedLocal, 0u);
}

TEST(CacheStoreTest, DeleteObjectInvalidatesItsChunks)
{
    Rig rig = makeRig(64 << 20);
    ASSERT_TRUE(rig.store->query(fetchVerdictQuery(rig)).isOk());
    ASSERT_GT(rig.store->chunkCache().entryCount(), 0u);
    ASSERT_TRUE(rig.store->deleteObject("lineitem").isOk());
    EXPECT_EQ(rig.store->chunkCache().entryCount(), 0u);
}

// ---------------------------------------------------------------------
// Determinism: the admission/eviction/hit sequence is a function of
// the query sequence alone, not of FUSION_THREADS.
// ---------------------------------------------------------------------

struct CacheTrace {
    std::string metricsJson;
    std::vector<cache::ChunkCache::Key> resident;
    uint64_t hits = 0, misses = 0, evictions = 0;
};

CacheTrace
runCacheWorkload(size_t threads)
{
    ThreadPool::setSharedThreads(threads);
    // Capacity far below the working set so evictions churn.
    Rig rig = makeRig(16 << 10);
    // Mixed trace: repeated hot query, cold sweeps at two
    // selectivities, then the hot query again.
    std::vector<query::Query> timeline;
    timeline.push_back(fetchVerdictQuery(rig, 0.8));
    timeline.push_back(fetchVerdictQuery(rig, 0.8));
    timeline.push_back(workload::microbenchQuery(
        "lineitem", "l_extendedprice",
        rig.table.column(workload::kExtendedPrice), 0.7));
    timeline.push_back(fetchVerdictQuery(rig, 0.9));
    timeline.push_back(fetchVerdictQuery(rig, 0.8));
    for (const auto &q : timeline)
        FUSION_CHECK(rig.store->query(q).isOk());

    CacheTrace trace;
    trace.metricsJson = rig.store->obs().metrics.snapshot().toJson();
    trace.resident = rig.store->chunkCache().residentKeys();
    trace.hits = rig.store->chunkCache().hits();
    trace.misses = rig.store->chunkCache().misses();
    trace.evictions = rig.store->chunkCache().evictions();
    ThreadPool::setSharedThreads(1);
    return trace;
}

TEST(CacheDeterminismTest, SameTraceAtAnyThreadCount)
{
    CacheTrace serial = runCacheWorkload(1);
    EXPECT_GT(serial.hits, 0u);
    EXPECT_GT(serial.evictions, 0u);
    for (size_t threads : {2, 4}) {
        CacheTrace other = runCacheWorkload(threads);
        EXPECT_EQ(serial.metricsJson, other.metricsJson)
            << "metrics diverged at FUSION_THREADS=" << threads;
        EXPECT_EQ(serial.resident, other.resident)
            << "resident set diverged at FUSION_THREADS=" << threads;
        EXPECT_EQ(serial.hits, other.hits);
        EXPECT_EQ(serial.misses, other.misses);
        EXPECT_EQ(serial.evictions, other.evictions);
    }
}

TEST(CacheDeterminismTest, RepeatRunsAreByteIdentical)
{
    CacheTrace a = runCacheWorkload(1);
    CacheTrace b = runCacheWorkload(1);
    EXPECT_EQ(a.metricsJson, b.metricsJson);
    EXPECT_EQ(a.resident, b.resident);
}

} // namespace
} // namespace fusion
