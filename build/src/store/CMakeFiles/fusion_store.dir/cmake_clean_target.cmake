file(REMOVE_RECURSE
  "libfusion_store.a"
)
