#include "node.h"

namespace fusion::sim {

StorageNode::StorageNode(SimEngine &engine, size_t id,
                         const NodeConfig &config)
    : id_(id), config_(config),
      disk_(engine, "node" + std::to_string(id) + ".disk",
            config.diskBandwidth),
      nicIn_(engine, "node" + std::to_string(id) + ".nicIn",
             config.nicBandwidth),
      nicOut_(engine, "node" + std::to_string(id) + ".nicOut",
              config.nicBandwidth),
      cpu_(engine, "node" + std::to_string(id) + ".cpu", config.cpuRate,
           config.cpuCores)
{
}

void
StorageNode::setSlowFactor(double factor)
{
    FUSION_CHECK_MSG(factor >= 1.0, "slow factor must be >= 1");
    slowFactor_ = factor;
    double scale = 1.0 / factor;
    disk_.setRateScale(scale);
    nicIn_.setRateScale(scale);
    nicOut_.setRateScale(scale);
    cpu_.setRateScale(scale);
}

void
StorageNode::putBlock(const std::string &key, Bytes data)
{
    auto it = blocks_.find(key);
    if (it != blocks_.end()) {
        storedBytes_ -= it->second.size();
        it->second = std::move(data);
        storedBytes_ += it->second.size();
        return;
    }
    storedBytes_ += data.size();
    blocks_.emplace(key, std::move(data));
}

const Bytes *
StorageNode::findBlock(const std::string &key) const
{
    auto it = blocks_.find(key);
    return it == blocks_.end() ? nullptr : &it->second;
}

bool
StorageNode::dropBlock(const std::string &key)
{
    auto it = blocks_.find(key);
    if (it == blocks_.end())
        return false;
    storedBytes_ -= it->second.size();
    blocks_.erase(it);
    return true;
}

} // namespace fusion::sim
