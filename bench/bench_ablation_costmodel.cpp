/**
 * @file
 * Ablation A4: value of the Cost Equation. Compares three pushdown
 * policies — adaptive (paper), always-push, and the fetch-everything
 * baseline — on aggregate queries over a highly compressible column
 * (l_discount, compressibility ~16x). Aggregates keep the client reply
 * tiny, so the policies differ purely in how projection data crosses
 * the storage network: always-push ships uncompressed values
 * (selectivity x plain bytes), adaptive switches to fetching the
 * compressed chunk once selectivity x compressibility exceeds 1.
 */
#include "benchutil/rigs.h"
#include "workload/lineitem.h"
#include "workload/queries.h"

using namespace fusion;
using namespace fusion::benchutil;

int
main(int argc, char **argv)
{
    benchutil::obsInit(argc, argv);
    banner("Ablation A4", "adaptive vs always-push vs never-push");

    RigOptions adaptive_options;
    adaptive_options.rows = 60000;
    adaptive_options.copies = 4;

    RigOptions always_options = adaptive_options;
    always_options.store.adaptivePushdown = false;

    StorePair adaptive = makeStorePair(Dataset::kLineitem,
                                       adaptive_options);
    StorePair always = makeStorePair(Dataset::kLineitem, always_options);

    RunConfig config;
    config.totalQueries = 250;

    TablePrinter table({"selectivity (%)", "cost product", "adaptive p50",
                        "always-push p50", "baseline p50",
                        "adaptive traffic (KiB/q)",
                        "always-push traffic (KiB/q)"});
    double compressibility =
        adaptive.file.metadata.chunk(0, workload::kDiscount)
            .compressibility();
    for (double sel : {0.01, 0.05, 0.2, 0.5, 1.0}) {
        // AVG over the compressible discount column; the filter column
        // (suppkey) controls selectivity.
        query::Query q;
        q.projections.push_back(
            {"l_discount", query::AggregateKind::kAvg});
        q.filters.push_back(
            {"l_suppkey", query::CompareOp::kLe,
             workload::quantileLiteral(
                 adaptive.table.column(workload::kSuppKey), sel)});

        RunStats a = runClosedLoop(*adaptive.fusion, config, [&](size_t i) {
            return adaptive.onCopy(q, i);
        });
        RunStats b = runClosedLoop(*always.fusion, config, [&](size_t i) {
            return always.onCopy(q, i);
        });
        RunStats c = runClosedLoop(*adaptive.baseline, config,
                                   [&](size_t i) {
                                       return adaptive.onCopy(q, i);
                                   });
        table.addRow(
            {fmt("%.0f", sel * 100), fmt("%.2f", sel * compressibility),
             formatSeconds(a.latency.p50()), formatSeconds(b.latency.p50()),
             formatSeconds(c.latency.p50()),
             fmt("%.1f", static_cast<double>(a.networkBytes) /
                             config.totalQueries / 1024),
             fmt("%.1f", static_cast<double>(b.networkBytes) /
                             config.totalQueries / 1024)});
    }
    table.print();
    std::printf("\nexpected: identical until the cost product crosses 1; "
                "beyond it, always-push ships large uncompressed replies "
                "while adaptive fetches the compressed chunk and stays "
                "flat\n");
    return 0;
}
