# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/codec_test[1]_include.cmake")
include("/root/repo/build/tests/format_test[1]_include.cmake")
include("/root/repo/build/tests/ec_test[1]_include.cmake")
include("/root/repo/build/tests/fac_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/query_test[1]_include.cmake")
include("/root/repo/build/tests/store_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/csv_test[1]_include.cmake")
include("/root/repo/build/tests/store_extra_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/lrc_test[1]_include.cmake")
include("/root/repo/build/tests/bloom_test[1]_include.cmake")
include("/root/repo/build/tests/benchutil_test[1]_include.cmake")
