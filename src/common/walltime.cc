#include "walltime.h"

// The one place raw monotonic-clock APIs are allowed (fusion-lint
// exempts common/walltime by path; see tools/fusion_lint).
#include <chrono>

namespace fusion::walltime {

double
monotonicSeconds()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

uint64_t
monotonicNanos()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

} // namespace fusion::walltime
