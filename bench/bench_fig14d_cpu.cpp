/**
 * @file
 * Reproduces paper Fig 14d: average storage-node CPU utilization under
 * a fixed query load, for several lineitem columns. Paper: Fusion uses
 * less CPU than the baseline at the same throughput because it moves
 * (and therefore processes through the network stack) far less data.
 * Our CPU accounting covers decode/eval plus erasure-reassembly work,
 * so the network-stack savings show up as lower utilization.
 */
#include "benchutil/rigs.h"
#include "workload/lineitem.h"
#include "workload/queries.h"

using namespace fusion;
using namespace fusion::benchutil;

int
main(int argc, char **argv)
{
    benchutil::obsInit(argc, argv);
    banner("Fig 14d", "avg CPU utilization per storage node");

    TablePrinter table({"column", "baseline util (%)", "fusion util (%)",
                        "baseline cpu-s/query", "fusion cpu-s/query"});
    for (size_t c : {workload::kOrderKey, workload::kExtendedPrice,
                     workload::kLineStatus, workload::kComment}) {
        RigOptions options;
        options.rows = 60000;
        options.copies = 4;
        StorePair pair = makeStorePair(Dataset::kLineitem, options);

        query::Query q = workload::microbenchQuery(
            "x", workload::lineitemSchema().column(c).name,
            pair.table.column(c), 0.01);

        RunConfig config;
        config.totalQueries = 300;
        config.openLoopQps = 5.0; // fixed load, as in the paper's setup
        Comparison cmp =
            compareStores(pair, config, [&](size_t) { return q; });
        table.addRow(
            {workload::lineitemSchema().column(c).name,
             fmt("%.2f", cmp.baseline.meanStorageCpuUtilization * 100),
             fmt("%.2f", cmp.fusion.meanStorageCpuUtilization * 100),
             fmt("%.4f", cmp.baseline.cpuSeconds / config.totalQueries),
             fmt("%.4f", cmp.fusion.cpuSeconds / config.totalQueries)});
    }
    table.print();
    std::printf("\npaper: Fusion's utilization is consistently lower at "
                "equal load\n");
    return 0;
}
