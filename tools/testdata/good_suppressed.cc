// Fixture: every violation carries a justification comment, so the
// file lints clean with a nonzero suppressed count.
#include <chrono>
#include <cstdlib>
#include <unordered_map>

double
wallNow()
{
    // Sanctioned here: this fixture plays the role of a timing shim.
    // fusion-lint: allow(wallclock)
    auto t = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t.time_since_epoch()).count();
}

int
jitter()
{
    return rand(); // fusion-lint: allow(unseeded-random)
}

std::unordered_map<int, int> scratch;

int
total()
{
    int sum = 0;
    // Order-independent reduction: sum is commutative over iteration
    // order. fusion-lint: allow(unordered-iter)
    for (const auto &[k, v] : scratch)
        sum += v;
    return sum;
}
