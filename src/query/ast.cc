#include "ast.h"

#include <algorithm>

namespace fusion::query {

const char *
compareOpName(CompareOp op)
{
    switch (op) {
      case CompareOp::kLt: return "<";
      case CompareOp::kLe: return "<=";
      case CompareOp::kGt: return ">";
      case CompareOp::kGe: return ">=";
      case CompareOp::kEq: return "=";
      case CompareOp::kNe: return "!=";
    }
    return "?";
}

const char *
aggregateKindName(AggregateKind kind)
{
    switch (kind) {
      case AggregateKind::kNone: return "";
      case AggregateKind::kCount: return "COUNT";
      case AggregateKind::kSum: return "SUM";
      case AggregateKind::kAvg: return "AVG";
      case AggregateKind::kMin: return "MIN";
      case AggregateKind::kMax: return "MAX";
    }
    return "?";
}

namespace {

void
pushUnique(std::vector<std::string> &out, const std::string &name)
{
    if (!name.empty() &&
        std::find(out.begin(), out.end(), name) == out.end()) {
        out.push_back(name);
    }
}

} // namespace

std::vector<std::string>
Query::projectionColumns() const
{
    std::vector<std::string> out;
    for (const auto &proj : projections)
        pushUnique(out, proj.column);
    return out;
}

std::vector<std::string>
Query::filterColumns() const
{
    std::vector<std::string> out;
    for (const auto &pred : filters)
        pushUnique(out, pred.column);
    return out;
}

std::string
Query::toString() const
{
    std::string out = "SELECT ";
    for (size_t i = 0; i < projections.size(); ++i) {
        if (i)
            out += ", ";
        const Projection &proj = projections[i];
        if (proj.aggregate != AggregateKind::kNone) {
            out += aggregateKindName(proj.aggregate);
            out += "(";
            out += proj.isCountStar() ? "*" : proj.column;
            out += ")";
        } else {
            out += proj.column;
        }
    }
    out += " FROM " + table;
    for (size_t i = 0; i < filters.size(); ++i) {
        out += (i == 0) ? " WHERE " : " AND ";
        out += filters[i].column;
        out += " ";
        out += compareOpName(filters[i].op);
        out += " ";
        if (filters[i].literal.type() == format::PhysicalType::kString)
            out += "'" + filters[i].literal.toString() + "'";
        else
            out += filters[i].literal.toString();
    }
    return out;
}

} // namespace fusion::query
