#include "harness.h"

#include <cstdarg>
#include <cstdio>

namespace fusion::benchutil {

RunStats
runClosedLoop(store::ObjectStore &store, const RunConfig &config,
              std::function<query::Query(size_t)> next_query)
{
    RunStats stats;
    sim::SimEngine &engine = store.cluster().engine();
    double wall_start = engine.now();
    uint64_t traffic_start = store.cluster().totalNetworkBytes();
    store::ObjectStore::FaultStats faults_start = store.faultStats();

    size_t issued = 0;
    auto record = [&](Result<store::QueryOutcome> outcome,
                      const std::function<void()> &after) {
        FUSION_CHECK_MSG(outcome.isOk(),
                         outcome.isOk() ? "" : outcome.status().toString());
        const store::QueryOutcome &o = outcome.value();
        stats.latency.add(o.latencySeconds);
        stats.diskSeconds += o.diskSeconds;
        stats.cpuSeconds += o.cpuSeconds;
        stats.networkSeconds += o.networkSeconds;
        stats.projectionPushdowns += o.projectionPushdowns;
        stats.projectionFetches += o.projectionFetches;
        after();
    };

    if (config.openLoopQps > 0.0) {
        // Fixed-rate arrivals, independent of completions.
        for (size_t i = 0; i < config.totalQueries; ++i) {
            engine.scheduleAt(
                wall_start + static_cast<double>(i) / config.openLoopQps,
                [&, i]() {
                    store.queryAsync(next_query(i),
                                     [&](Result<store::QueryOutcome> o) {
                                         record(std::move(o), [] {});
                                     });
                });
        }
        engine.run();
    } else {
        // One closed-loop client: issue, wait for completion, repeat.
        std::function<void()> issue_next = [&]() {
            if (issued >= config.totalQueries)
                return;
            size_t index = issued++;
            store.queryAsync(next_query(index),
                             [&](Result<store::QueryOutcome> o) {
                                 record(std::move(o), issue_next);
                             });
        };
        size_t clients = std::min(config.clients, config.totalQueries);
        for (size_t c = 0; c < clients; ++c)
            issue_next();
        engine.run();
    }

    stats.wallSimSeconds = engine.now() - wall_start;
    stats.networkBytes =
        store.cluster().totalNetworkBytes() - traffic_start;
    const store::ObjectStore::FaultStats &faults = store.faultStats();
    stats.readRetries = faults.readRetries - faults_start.readRetries;
    stats.parityReconstructions = faults.parityReconstructions -
                                  faults_start.parityReconstructions;
    stats.pushdownFallbacks =
        faults.pushdownFallbacks - faults_start.pushdownFallbacks;
    stats.degradedChunkReads =
        faults.degradedChunkReads - faults_start.degradedChunkReads;
    stats.meanStorageCpuUtilization =
        store.cluster().meanStorageCpuUtilization();
    FUSION_CHECK(stats.latency.count() == config.totalQueries);
    return stats;
}

double
latencyReductionPct(double baseline_seconds, double fusion_seconds)
{
    if (baseline_seconds <= 0.0)
        return 0.0;
    return (baseline_seconds - fusion_seconds) / baseline_seconds * 100.0;
}

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

void
TablePrinter::addRow(std::vector<std::string> cells)
{
    FUSION_CHECK(cells.size() == headers_.size());
    rows_.push_back(std::move(cells));
}

void
TablePrinter::print() const
{
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto print_row = [&](const std::vector<std::string> &cells) {
        std::printf("|");
        for (size_t c = 0; c < cells.size(); ++c)
            std::printf(" %-*s |", static_cast<int>(widths[c]),
                        cells[c].c_str());
        std::printf("\n");
    };
    print_row(headers_);
    std::printf("|");
    for (size_t c = 0; c < headers_.size(); ++c)
        std::printf("%s|", std::string(widths[c] + 2, '-').c_str());
    std::printf("\n");
    for (const auto &row : rows_)
        print_row(row);
}

std::string
fmt(const char *format, ...)
{
    char buf[256];
    va_list args;
    va_start(args, format);
    std::vsnprintf(buf, sizeof(buf), format, args);
    va_end(args);
    return buf;
}

void
banner(const std::string &id, const std::string &title)
{
    std::printf("\n=== %s: %s ===\n\n", id.c_str(), title.c_str());
}

} // namespace fusion::benchutil
