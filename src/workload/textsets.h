/**
 * @file
 * Text-heavy dataset generators used in the storage-overhead studies:
 * a recipeNLG-style table (7 columns dominated by long free text) and a
 * UK property-prices-style table (16 columns mixing identifiers,
 * categorical codes and place names). Paper Table 3 / Figs 4c, 4d, 16b.
 */
#ifndef FUSION_WORKLOAD_TEXTSETS_H
#define FUSION_WORKLOAD_TEXTSETS_H

#include "format/column.h"
#include "format/writer.h"

namespace fusion::workload {

format::Schema recipeSchema();
format::Table makeRecipeTable(size_t rows, uint64_t seed);
/** 12 row groups x 7 columns = 84 chunks (paper Table 3). */
Result<format::WrittenFile> buildRecipeFile(size_t rows, uint64_t seed);

format::Schema ukppSchema();
format::Table makeUkppTable(size_t rows, uint64_t seed);
/** 15 row groups x 16 columns = 240 chunks (paper Table 3). */
Result<format::WrittenFile> buildUkppFile(size_t rows, uint64_t seed);

} // namespace fusion::workload

#endif // FUSION_WORKLOAD_TEXTSETS_H
