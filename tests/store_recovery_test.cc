/**
 * @file
 * Recovery and degraded-read robustness tests: node crashes during
 * scans must be healed bit-exactly by parity reconstruction, queries
 * must survive up to n-k simultaneous failures with results identical
 * to the fault-free run, anything beyond tolerance must fail with a
 * clean Status (never a crash), and the retry/backoff/fallback
 * machinery must be observable through the store's fault counters.
 */
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <optional>

#include "common/thread_pool.h"
#include "query/parser.h"
#include "sim/fault.h"
#include "store/baseline_store.h"
#include "store/fusion_store.h"
#include "workload/lineitem.h"

namespace fusion::store {
namespace {

struct TestRig {
    std::unique_ptr<sim::Cluster> cluster;
    std::unique_ptr<ObjectStore> store;
    std::unique_ptr<sim::FaultInjector> faults;
};

TestRig
makeRig(bool fusion, StoreOptions options = {}, size_t nodes = 9)
{
    TestRig rig;
    sim::ClusterConfig config;
    config.numNodes = nodes;
    rig.cluster = std::make_unique<sim::Cluster>(config);
    if (fusion)
        rig.store = std::make_unique<FusionStore>(*rig.cluster, options);
    else
        rig.store = std::make_unique<BaselineStore>(*rig.cluster, options);
    return rig;
}

Bytes
lineitemBytes(size_t rows = 4000, uint64_t seed = 7)
{
    static std::map<std::pair<size_t, uint64_t>, Bytes> cache;
    auto key = std::make_pair(rows, seed);
    auto it = cache.find(key);
    if (it == cache.end()) {
        auto file = workload::buildLineitemFile(rows, seed);
        FUSION_CHECK(file.isOk());
        it = cache.emplace(key, file.value().bytes).first;
    }
    return it->second;
}

query::Query
sql(const std::string &text)
{
    auto q = query::parseQuery(text);
    FUSION_CHECK_MSG(q.isOk(), q.status().toString());
    return q.value();
}

/** Issues each query at its scheduled simulated time and runs the
 *  engine to completion. */
std::vector<Result<QueryOutcome>>
runAt(ObjectStore &store,
      const std::vector<std::pair<double, query::Query>> &timeline)
{
    std::vector<std::optional<Result<QueryOutcome>>> captured(
        timeline.size());
    sim::SimEngine &engine = store.cluster().engine();
    for (size_t i = 0; i < timeline.size(); ++i) {
        engine.scheduleAt(timeline[i].first, [&store, &captured, &timeline,
                                              i]() {
            store.queryAsync(timeline[i].second,
                             [&captured, i](Result<QueryOutcome> outcome) {
                                 captured[i].emplace(std::move(outcome));
                             });
        });
    }
    engine.run();
    std::vector<Result<QueryOutcome>> out;
    for (auto &c : captured) {
        FUSION_CHECK_MSG(c.has_value(), "query did not complete");
        out.push_back(std::move(*c));
    }
    return out;
}

void
expectSameResults(const query::QueryResult &a, const query::QueryResult &b)
{
    EXPECT_EQ(a.rowsMatched, b.rowsMatched);
    ASSERT_EQ(a.columns.size(), b.columns.size());
    for (size_t c = 0; c < a.columns.size(); ++c) {
        EXPECT_EQ(a.columns[c].isAggregate, b.columns[c].isAggregate);
        if (a.columns[c].isAggregate)
            EXPECT_DOUBLE_EQ(a.columns[c].aggregateValue,
                             b.columns[c].aggregateValue);
        else
            EXPECT_TRUE(a.columns[c].values == b.columns[c].values);
    }
}

TEST(RecoveryTest, SingleNodeCrashReconstructsEveryChunkBitExact)
{
    Bytes object = lineitemBytes();
    TestRig rig = makeRig(true);
    ASSERT_TRUE(rig.store->put("lineitem", object).isOk());

    rig.cluster->killNode(4);
    rig.store->dropCaches();

    // get() walks every chunk of the object; blocks on the dead node
    // must be rebuilt from parity and the result must be bit-exact.
    auto back = rig.store->get("lineitem");
    ASSERT_TRUE(back.isOk()) << back.status().toString();
    EXPECT_EQ(back.value(), object);

    const ObjectStore::FaultStats &stats = rig.store->faultStats();
    EXPECT_GE(stats.parityReconstructions, 1u);
    EXPECT_GE(stats.degradedChunkReads, 1u);
    EXPECT_GE(stats.readTimeouts, 1u);
    EXPECT_GT(stats.backoffSeconds, 0.0);
}

// Acceptance: downing ANY single data node mid-workload keeps all
// query results identical to the fault-free run, with at least one
// parity reconstruction and one pushdown fallback reported.
TEST(RecoveryTest, AnySingleNodeCrashMidQueryKeepsResultsIdentical)
{
    Bytes object = lineitemBytes();

    // Distinct SQL per phase so the memoized data plane re-executes
    // while the fault is active.
    std::vector<std::pair<double, query::Query>> timeline = {
        {0.0, sql("SELECT l_orderkey FROM lineitem "
                  "WHERE l_quantity < 5")},
        {0.02, sql("SELECT * FROM lineitem WHERE l_quantity < 30")},
        {0.03, sql("SELECT SUM(l_extendedprice), COUNT(*) FROM lineitem "
                   "WHERE l_discount >= 0.03")},
        {0.06, sql("SELECT l_comment FROM lineitem "
                   "WHERE l_extendedprice < 20000")},
    };

    TestRig healthy = makeRig(true);
    ASSERT_TRUE(healthy.store->put("lineitem", object).isOk());
    auto expected = runAt(*healthy.store, timeline);

    for (size_t victim = 0; victim < 9; ++victim) {
        TestRig rig = makeRig(true);
        ASSERT_TRUE(rig.store->put("lineitem", object).isOk());
        sim::FaultSchedule schedule;
        schedule.crashAt(0.01, victim).reviveAt(0.05, victim);
        rig.faults = std::make_unique<sim::FaultInjector>(*rig.cluster,
                                                          schedule);
        rig.faults->arm();

        auto outcomes = runAt(*rig.store, timeline);
        ASSERT_EQ(outcomes.size(), expected.size());
        for (size_t i = 0; i < outcomes.size(); ++i) {
            ASSERT_TRUE(outcomes[i].isOk())
                << "victim " << victim << ": "
                << outcomes[i].status().toString();
            expectSameResults(outcomes[i].value().result,
                              expected[i].value().result);
        }
        const ObjectStore::FaultStats &stats = rig.store->faultStats();
        EXPECT_GE(stats.parityReconstructions, 1u) << "victim " << victim;
        EXPECT_GE(stats.pushdownFallbacks, 1u) << "victim " << victim;
    }
}

TEST(RecoveryTest, NMinusKSimultaneousFailuresStillAnswerQueries)
{
    Bytes object = lineitemBytes();
    TestRig healthy = makeRig(true);
    TestRig rig = makeRig(true);
    ASSERT_TRUE(healthy.store->put("lineitem", object).isOk());
    ASSERT_TRUE(rig.store->put("lineitem", object).isOk());

    // RS(9,6): n - k = 3 simultaneous failures are tolerated.
    rig.cluster->killNode(1);
    rig.cluster->killNode(5);
    rig.cluster->killNode(8);
    rig.store->dropCaches();

    auto back = rig.store->get("lineitem");
    ASSERT_TRUE(back.isOk()) << back.status().toString();
    EXPECT_EQ(back.value(), object);

    const char *queries[] = {
        "SELECT l_orderkey FROM lineitem WHERE l_quantity < 10",
        "SELECT COUNT(*), MAX(l_extendedprice) FROM lineitem "
        "WHERE l_discount < 0.05",
        "SELECT * FROM lineitem WHERE l_orderkey < 100",
    };
    for (const char *text : queries) {
        auto degraded = rig.store->querySql(text);
        auto reference = healthy.store->querySql(text);
        ASSERT_TRUE(degraded.isOk()) << text << ": "
                                     << degraded.status().toString();
        ASSERT_TRUE(reference.isOk());
        expectSameResults(degraded.value().result,
                          reference.value().result);
    }
    EXPECT_GE(rig.store->faultStats().parityReconstructions, 1u);
}

TEST(RecoveryTest, BeyondToleranceFailsWithCleanStatus)
{
    Bytes object = lineitemBytes();
    TestRig rig = makeRig(true);
    ASSERT_TRUE(rig.store->put("lineitem", object).isOk());

    // n - k + 1 = 4 failures: unrecoverable, but never a crash.
    for (size_t victim : {0, 2, 4, 6})
        rig.cluster->killNode(victim);
    rig.store->dropCaches();

    auto back = rig.store->get("lineitem");
    ASSERT_FALSE(back.isOk());
    EXPECT_EQ(back.status().code(), StatusCode::kUnavailable);
    // The error names the shortfall.
    EXPECT_NE(back.status().toString().find("need"), std::string::npos);

    auto outcome = rig.store->querySql(
        "SELECT l_orderkey FROM lineitem WHERE l_quantity < 5");
    ASSERT_FALSE(outcome.isOk());
    EXPECT_EQ(outcome.status().code(), StatusCode::kUnavailable);

    // Reviving one node makes the object readable again.
    rig.cluster->reviveNode(0);
    rig.store->dropCaches();
    auto healed = rig.store->get("lineitem");
    ASSERT_TRUE(healed.isOk()) << healed.status().toString();
    EXPECT_EQ(healed.value(), object);
}

TEST(RecoveryTest, RetryBackoffIsBoundedAndCounted)
{
    StoreOptions options;
    options.maxReadRetries = 4;
    options.retryBackoffBaseSeconds = 1e-3;
    options.retryBackoffMaxSeconds = 2e-3; // cap below 1+2+4+8 growth
    Bytes object = lineitemBytes();
    TestRig rig = makeRig(true, options);
    ASSERT_TRUE(rig.store->put("lineitem", object).isOk());

    rig.cluster->killNode(3);
    rig.store->dropCaches();
    ASSERT_TRUE(rig.store->get("lineitem").isOk());

    const ObjectStore::FaultStats &stats = rig.store->faultStats();
    ASSERT_GE(stats.readTimeouts, 1u);
    // Health-adaptive budget: the first timed-out read burns the full
    // configured budget; every later read against the now-dead node
    // fails fast with a single probe retry (obs::NodeHealthTracker
    // bands the node "dead" once a timeout streak is open with no flap
    // evidence), falling over to parity reconstruction early.
    EXPECT_EQ(stats.readRetries,
              options.maxReadRetries + (stats.readTimeouts - 1));
    // Bounded exponential backoff: 1 + 2 + 2 + 2 ms for the first
    // timed-out read, then the 1 ms probe per fail-fast read.
    EXPECT_NEAR(stats.backoffSeconds,
                7e-3 + 1e-3 * static_cast<double>(stats.readTimeouts - 1),
                1e-9);
}

TEST(RecoveryTest, FlappingNodeRecoversDuringBackoffWithoutRebuild)
{
    Bytes object = lineitemBytes();
    TestRig rig = makeRig(true);
    ASSERT_TRUE(rig.store->put("lineitem", object).isOk());

    // Node 2 blinks: down just before the query is planned, back
    // within the first retry's backoff window (base 1 ms).
    sim::FaultSchedule schedule;
    schedule.crashAt(0.0005, 2).reviveAt(0.0018, 2);
    rig.faults = std::make_unique<sim::FaultInjector>(*rig.cluster,
                                                      schedule);
    rig.faults->arm();

    auto outcomes = runAt(
        *rig.store,
        {{0.001, sql("SELECT * FROM lineitem WHERE l_quantity < 30")}});
    ASSERT_TRUE(outcomes[0].isOk()) << outcomes[0].status().toString();

    const ObjectStore::FaultStats &stats = rig.store->faultStats();
    EXPECT_GE(stats.readRetries, 1u);
    // The retry found the node alive again: no block was declared
    // lost, so nothing was rebuilt from parity.
    EXPECT_EQ(stats.readTimeouts, 0u);
    EXPECT_EQ(stats.parityReconstructions, 0u);
}

TEST(RecoveryTest, GrayFailureTriggersPushdownFallback)
{
    Bytes object = lineitemBytes();
    TestRig healthy = makeRig(true);
    TestRig rig = makeRig(true);
    ASSERT_TRUE(healthy.store->put("lineitem", object).isOk());
    ASSERT_TRUE(rig.store->put("lineitem", object).isOk());

    // Slow (not dead): modeled response 100 x 150us >> 1 ms timeout,
    // so reads treat the node as unresponsive and queries reroute.
    rig.cluster->node(6).setSlowFactor(100.0);
    rig.store->dropCaches();

    const char *text = "SELECT * FROM lineitem WHERE l_quantity < 20";
    auto slow = rig.store->querySql(text);
    auto reference = healthy.store->querySql(text);
    ASSERT_TRUE(slow.isOk()) << slow.status().toString();
    ASSERT_TRUE(reference.isOk());
    expectSameResults(slow.value().result, reference.value().result);

    EXPECT_GE(slow.value().pushdownFallbacks, 1u);
    EXPECT_GE(rig.store->faultStats().pushdownFallbacks, 1u);
    EXPECT_GE(rig.store->faultStats().parityReconstructions, 1u);

    // Restored node serves pushdowns again (fresh plan, no fallback).
    rig.cluster->node(6).setSlowFactor(1.0);
    auto restored = rig.store->querySql(
        "SELECT * FROM lineitem WHERE l_quantity < 21");
    ASSERT_TRUE(restored.isOk());
    EXPECT_EQ(restored.value().pushdownFallbacks, 0u);
}

TEST(RecoveryTest, BaselineStoreSurvivesFaultsToo)
{
    StoreOptions options;
    options.fixedBlockSize = 4 << 10;
    Bytes object = lineitemBytes();
    TestRig healthy = makeRig(false, options);
    TestRig rig = makeRig(false, options);
    ASSERT_TRUE(healthy.store->put("lineitem", object).isOk());
    ASSERT_TRUE(rig.store->put("lineitem", object).isOk());

    rig.cluster->killNode(0);
    rig.cluster->killNode(7);
    rig.store->dropCaches();

    const char *text =
        "SELECT l_orderkey FROM lineitem WHERE l_quantity < 15";
    auto degraded = rig.store->querySql(text);
    auto reference = healthy.store->querySql(text);
    ASSERT_TRUE(degraded.isOk()) << degraded.status().toString();
    ASSERT_TRUE(reference.isOk());
    expectSameResults(degraded.value().result, reference.value().result);
    EXPECT_GE(rig.store->faultStats().parityReconstructions, 1u);
}

// ---------------------------------------------------------------------
// Coordinator hot-chunk cache under faults: degraded reads must never
// leave (or serve) a stale cache entry.
// ---------------------------------------------------------------------

TEST(RecoveryCacheTest, DegradedReadsInvalidateCachedChunks)
{
    Bytes object = lineitemBytes();
    StoreOptions cached_options;
    cached_options.cacheBytes = 64 << 20;
    TestRig rig = makeRig(true, cached_options);
    ASSERT_TRUE(rig.store->put("lineitem", object).isOk());

    // Warm the cache: fetch verdicts admit every quantity chunk.
    auto warm = rig.store->querySql(
        "SELECT l_quantity FROM lineitem WHERE l_quantity < 45");
    ASSERT_TRUE(warm.isOk());
    ASSERT_GT(warm.value().projectionFetches, 0u);
    ASSERT_GT(rig.store->chunkCache().entryCount(), 0u);

    // Kill a node that actually holds a cached quantity chunk so the
    // re-read is degraded.
    const ObjectManifest &m = *rig.store->manifest("lineitem").value();
    const size_t victim =
        m.nodesForChunk(rig.store->chunkCache().residentKeys()[0].second)
            .at(0);
    rig.cluster->killNode(victim);
    rig.store->dropCaches(); // memoization only; chunk cache survives

    // A new literal forces the data plane to re-execute against the
    // dead node: chunks with pieces there are reconstructed from
    // parity, and each reconstruction invalidates its cache entry.
    auto degraded = rig.store->querySql(
        "SELECT l_quantity FROM lineitem WHERE l_quantity < 40");
    ASSERT_TRUE(degraded.isOk()) << degraded.status().toString();
    EXPECT_GE(rig.store->faultStats().parityReconstructions, 1u);

    // No surviving entry may involve the dead node — every cached
    // chunk that did was touched by a degraded read and dropped.
    for (const auto &key : rig.store->chunkCache().residentKeys()) {
        for (const auto &piece : m.chunkPieces.at(key.second))
            EXPECT_NE(m.stripeNodes[piece.stripe][piece.blockIndex],
                      victim)
                << "stale cache entry for chunk " << key.second;
    }

    // And the degraded result matches a cache-off reference under the
    // same fault — reconstructed bytes were never served stale.
    TestRig reference = makeRig(true);
    ASSERT_TRUE(reference.store->put("lineitem", object).isOk());
    reference.cluster->killNode(victim);
    reference.store->dropCaches();
    auto expected = reference.store->querySql(
        "SELECT l_quantity FROM lineitem WHERE l_quantity < 40");
    ASSERT_TRUE(expected.isOk());
    expectSameResults(degraded.value().result, expected.value().result);
}

TEST(RecoveryCacheTest, CrashReviveScheduleMatchesCacheOffReference)
{
    // Fault-schedule regression: a crash/revive window sweeps across a
    // cache-enabled workload; every result must match the same
    // timeline on a cache-off rig under the same schedule, while the
    // cache demonstrably serves hits.
    Bytes object = lineitemBytes();
    std::vector<std::pair<double, query::Query>> timeline = {
        {0.0, sql("SELECT l_quantity FROM lineitem "
                  "WHERE l_quantity < 45")}, // warms the cache
        {0.1, sql("SELECT l_quantity FROM lineitem "
                  "WHERE l_quantity < 44")}, // during the crash
        {0.2, sql("SELECT SUM(l_quantity) FROM lineitem "
                  "WHERE l_quantity < 43")}, // still during the crash
        {0.6, sql("SELECT l_quantity FROM lineitem "
                  "WHERE l_quantity < 42")}, // after the revive
    };

    // Crash a node that holds a quantity chunk (placement is a pure
    // function of the object bytes, so a probe rig finds one).
    size_t victim;
    {
        StoreOptions probe_options;
        probe_options.cacheBytes = 64 << 20;
        TestRig probe = makeRig(true, probe_options);
        ASSERT_TRUE(probe.store->put("lineitem", object).isOk());
        ASSERT_TRUE(probe.store
                        ->querySql("SELECT l_quantity FROM lineitem "
                                   "WHERE l_quantity < 45")
                        .isOk());
        const auto resident = probe.store->chunkCache().residentKeys();
        ASSERT_FALSE(resident.empty());
        const ObjectManifest &m =
            *probe.store->manifest("lineitem").value();
        victim = m.nodesForChunk(resident[0].second).at(0);
    }

    auto run = [&object, &timeline, victim](uint64_t cache_bytes) {
        StoreOptions options;
        options.cacheBytes = cache_bytes;
        TestRig rig = makeRig(true, options);
        FUSION_CHECK(rig.store->put("lineitem", object).isOk());
        sim::FaultSchedule schedule;
        schedule.crashAt(0.05, victim).reviveAt(0.4, victim);
        rig.faults = std::make_unique<sim::FaultInjector>(*rig.cluster,
                                                          schedule);
        rig.faults->arm();
        // Drop the memoization caches inside the crash window so the
        // 0.1+ queries re-execute their data planes against the dead
        // node (the semantic chunk cache survives this).
        rig.cluster->engine().scheduleAt(
            0.08, [store = rig.store.get()]() { store->dropCaches(); });
        auto outcomes = runAt(*rig.store, timeline);
        return std::make_pair(std::move(rig), std::move(outcomes));
    };

    auto [cached_rig, cached] = run(64 << 20);
    auto [plain_rig, plain] = run(0);
    ASSERT_EQ(cached.size(), plain.size());
    for (size_t i = 0; i < cached.size(); ++i) {
        ASSERT_TRUE(cached[i].isOk()) << cached[i].status().toString();
        ASSERT_TRUE(plain[i].isOk());
        expectSameResults(cached[i].value().result,
                          plain[i].value().result);
    }
    // The schedule actually bit, and the cache actually served.
    EXPECT_GE(cached_rig.store->faultStats().degradedChunkReads, 1u);
    EXPECT_GT(cached_rig.store->chunkCache().hits(), 0u);
}

// ---------------------------------------------------------------------
// Lifecycle: a node crashes in the window between a delta log sealing
// and the background fold landing. The old generation plus the full log
// must stay bit-readable (degraded) inside the window, the fold itself
// must complete through parity reconstruction, and every byte of it
// must be identical for any worker-thread count.
// ---------------------------------------------------------------------

struct CompactionCrashRun {
    Bytes midWindowBytes; // get() probed while the fold was in flight
    Bytes finalBytes;     // get() after the fold landed, node still dead
    uint64_t generation = 0;
    uint64_t runs = 0;
    uint64_t aborts = 0;
    uint64_t parityReconstructions = 0;
    std::string metricsJson;
};

CompactionCrashRun
runCrashMidCompaction(size_t threads)
{
    ThreadPool::setSharedThreads(threads);

    StoreOptions options;
    options.compaction.maxDeltaSegments = 2;
    TestRig rig = makeRig(true, options);
    FUSION_CHECK(rig.store->put("lineitem", lineitemBytes()).isOk());
    format::Table batch_a = workload::makeLineitemTable(80, 61);
    format::Table batch_b = workload::makeLineitemTable(80, 62);
    FUSION_CHECK(rig.store->append("lineitem", batch_a).isOk());
    // The second append crosses maxDeltaSegments: the log seals and the
    // fold is scheduled estimatedCompactSeconds ahead.
    FUSION_CHECK(rig.store->append("lineitem", batch_b).isOk());
    double fold_delay =
        rig.store->deltaLogStats("lineitem").estimatedCompactSeconds;
    FUSION_CHECK(fold_delay > 0.0);

    // Crash a node halfway through the compaction window; it never
    // comes back, so both the mid-window merge and the fold itself run
    // degraded through parity reconstruction.
    sim::FaultSchedule schedule;
    schedule.crashAt(0.5 * fold_delay, 3);
    rig.faults =
        std::make_unique<sim::FaultInjector>(*rig.cluster, schedule);
    rig.faults->arm();

    CompactionCrashRun run;
    sim::SimEngine &engine = rig.cluster->engine();
    engine.scheduleAt(0.6 * fold_delay, [&rig, &run]() {
        auto mid = rig.store->get("lineitem");
        FUSION_CHECK_MSG(mid.isOk(), mid.status().toString());
        run.midWindowBytes = std::move(mid.value());
    });
    engine.run();

    auto final_bytes = rig.store->get("lineitem");
    FUSION_CHECK_MSG(final_bytes.isOk(), final_bytes.status().toString());
    run.finalBytes = std::move(final_bytes.value());
    auto m = rig.store->manifest("lineitem");
    FUSION_CHECK(m.isOk());
    run.generation = m.value()->generation;
    run.runs = rig.store->compactor().runs();
    run.aborts = rig.store->compactor().aborts();
    run.parityReconstructions =
        rig.store->faultStats().parityReconstructions;
    run.metricsJson = rig.store->obs().metrics.snapshot().toJson();
    ThreadPool::setSharedThreads(1);
    return run;
}

TEST(RecoveryLifecycleTest, CrashMidCompactionStaysReadableAllThreadCounts)
{
    // The reference image every probe must match: base + both batches
    // re-serialized under the base's row-group geometry (4000 rows in
    // 10 groups of 400 — the store probes the first group's size).
    format::Table merged = workload::makeLineitemTable(4000, 7);
    for (uint64_t seed : {61, 62}) {
        format::Table batch = workload::makeLineitemTable(80, seed);
        for (size_t col = 0; col < merged.numColumns(); ++col)
            for (size_t i = 0; i < batch.column(col).size(); ++i)
                merged.column(col).appendValue(
                    batch.column(col).valueAt(i));
    }
    format::WriterOptions writer_options;
    writer_options.rowGroupRows = 400;
    auto want = format::writeTable(merged, writer_options);
    ASSERT_TRUE(want.isOk());

    CompactionCrashRun serial = runCrashMidCompaction(1);
    // Mid-window: the fold had not landed, yet the degraded merged
    // read already equals the future compacted base bit-for-bit.
    EXPECT_EQ(serial.midWindowBytes, want.value().bytes);
    // Post-fold: generation bumped, log folded, node still dead — the
    // new base reads back identical through parity.
    EXPECT_EQ(serial.finalBytes, want.value().bytes);
    EXPECT_EQ(serial.generation, 1u);
    EXPECT_EQ(serial.runs, 1u);
    EXPECT_EQ(serial.aborts, 0u);
    EXPECT_GT(serial.parityReconstructions, 0u);

    for (size_t threads : {size_t{2}, size_t{4}}) {
        CompactionCrashRun run = runCrashMidCompaction(threads);
        EXPECT_EQ(run.midWindowBytes, serial.midWindowBytes)
            << threads << " threads";
        EXPECT_EQ(run.finalBytes, serial.finalBytes)
            << threads << " threads";
        EXPECT_EQ(run.generation, serial.generation);
        EXPECT_EQ(run.runs, serial.runs);
        EXPECT_EQ(run.aborts, serial.aborts);
        EXPECT_EQ(run.metricsJson, serial.metricsJson)
            << threads << " threads";
    }
}

TEST(RecoveryTest, RepairAfterMediaLossCountsReconstructions)
{
    Bytes object = lineitemBytes();
    TestRig rig = makeRig(true);
    ASSERT_TRUE(rig.store->put("lineitem", object).isOk());

    size_t victim = 5;
    rig.cluster->killNode(victim);
    rig.cluster->node(victim).wipe();
    rig.cluster->reviveNode(victim);

    auto rebuilt = rig.store->repairNode(victim);
    ASSERT_TRUE(rebuilt.isOk()) << rebuilt.status().toString();
    EXPECT_GT(rebuilt.value(), 0u);
    EXPECT_EQ(rig.store->faultStats().parityReconstructions,
              rebuilt.value());

    rig.store->dropCaches();
    auto back = rig.store->get("lineitem");
    ASSERT_TRUE(back.isOk());
    EXPECT_EQ(back.value(), object);
}

} // namespace
} // namespace fusion::store
