#include "gf256.h"

#include <cstdlib>
#include <cstring>

#include "common/status.h"
#include "obs/metrics.h"

#if defined(__x86_64__) || defined(__i386__)
#define FUSION_GF256_X86 1
#include <immintrin.h>
#endif

namespace fusion::ec {

namespace {

constexpr unsigned kPrimitivePoly = 0x11d;

SimdLevel
detectHardwareLevel()
{
#ifdef FUSION_GF256_X86
    if (__builtin_cpu_supports("avx2"))
        return SimdLevel::kAvx2;
    if (__builtin_cpu_supports("ssse3"))
        return SimdLevel::kSsse3;
#endif
    return SimdLevel::kScalar;
}

SimdLevel
hardwareSimdLevel()
{
    static const SimdLevel level = detectHardwareLevel();
    return level;
}

SimdLevel
detectBestLevel()
{
    SimdLevel supported = hardwareSimdLevel();
    const char *env = std::getenv("FUSION_SIMD");
    if (env != nullptr) {
        SimdLevel forced = supported;
        if (std::strcmp(env, "scalar") == 0)
            forced = SimdLevel::kScalar;
        else if (std::strcmp(env, "ssse3") == 0)
            forced = SimdLevel::kSsse3;
        else if (std::strcmp(env, "avx2") == 0)
            forced = SimdLevel::kAvx2;
        // Forcing above hardware support would SIGILL; clamp instead.
        if (forced < supported)
            supported = forced;
    }
    return supported;
}

#ifdef FUSION_GF256_X86

__attribute__((target("ssse3"))) void
mulAccumulateSsse3(uint8_t *dst, const uint8_t *src, size_t len,
                   const uint8_t *nib_lo, const uint8_t *nib_hi)
{
    const __m128i tlo =
        _mm_load_si128(reinterpret_cast<const __m128i *>(nib_lo));
    const __m128i thi =
        _mm_load_si128(reinterpret_cast<const __m128i *>(nib_hi));
    const __m128i mask = _mm_set1_epi8(0x0f);
    size_t i = 0;
    for (; i + 16 <= len; i += 16) {
        __m128i s =
            _mm_loadu_si128(reinterpret_cast<const __m128i *>(src + i));
        __m128i d =
            _mm_loadu_si128(reinterpret_cast<__m128i *>(dst + i));
        __m128i lo = _mm_and_si128(s, mask);
        __m128i hi = _mm_and_si128(_mm_srli_epi64(s, 4), mask);
        __m128i prod = _mm_xor_si128(_mm_shuffle_epi8(tlo, lo),
                                     _mm_shuffle_epi8(thi, hi));
        _mm_storeu_si128(reinterpret_cast<__m128i *>(dst + i),
                         _mm_xor_si128(d, prod));
    }
    // Scalar tail over the same split tables (bit-identical).
    for (; i < len; ++i) {
        uint8_t s = src[i];
        dst[i] ^= nib_lo[s & 0x0f] ^ nib_hi[s >> 4];
    }
}

__attribute__((target("avx2"))) void
mulAccumulateAvx2(uint8_t *dst, const uint8_t *src, size_t len,
                  const uint8_t *nib_lo, const uint8_t *nib_hi)
{
    const __m256i tlo = _mm256_broadcastsi128_si256(
        _mm_load_si128(reinterpret_cast<const __m128i *>(nib_lo)));
    const __m256i thi = _mm256_broadcastsi128_si256(
        _mm_load_si128(reinterpret_cast<const __m128i *>(nib_hi)));
    const __m256i mask = _mm256_set1_epi8(0x0f);
    size_t i = 0;
    for (; i + 64 <= len; i += 64) {
        __m256i s0 = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(src + i));
        __m256i s1 = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(src + i + 32));
        __m256i d0 =
            _mm256_loadu_si256(reinterpret_cast<__m256i *>(dst + i));
        __m256i d1 = _mm256_loadu_si256(
            reinterpret_cast<__m256i *>(dst + i + 32));
        __m256i p0 = _mm256_xor_si256(
            _mm256_shuffle_epi8(tlo, _mm256_and_si256(s0, mask)),
            _mm256_shuffle_epi8(
                thi,
                _mm256_and_si256(_mm256_srli_epi64(s0, 4), mask)));
        __m256i p1 = _mm256_xor_si256(
            _mm256_shuffle_epi8(tlo, _mm256_and_si256(s1, mask)),
            _mm256_shuffle_epi8(
                thi,
                _mm256_and_si256(_mm256_srli_epi64(s1, 4), mask)));
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(dst + i),
                            _mm256_xor_si256(d0, p0));
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(dst + i + 32),
                            _mm256_xor_si256(d1, p1));
    }
    for (; i + 32 <= len; i += 32) {
        __m256i s = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(src + i));
        __m256i d =
            _mm256_loadu_si256(reinterpret_cast<__m256i *>(dst + i));
        __m256i prod = _mm256_xor_si256(
            _mm256_shuffle_epi8(tlo, _mm256_and_si256(s, mask)),
            _mm256_shuffle_epi8(
                thi, _mm256_and_si256(_mm256_srli_epi64(s, 4), mask)));
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(dst + i),
                            _mm256_xor_si256(d, prod));
    }
    for (; i < len; ++i) {
        uint8_t s = src[i];
        dst[i] ^= nib_lo[s & 0x0f] ^ nib_hi[s >> 4];
    }
}

#endif // FUSION_GF256_X86

} // namespace

const char *
simdLevelName(SimdLevel level)
{
    switch (level) {
      case SimdLevel::kScalar: return "scalar";
      case SimdLevel::kSsse3: return "ssse3";
      case SimdLevel::kAvx2: return "avx2";
    }
    return "unknown";
}

Gf256::Gf256()
{
    unsigned x = 1;
    for (int i = 0; i < 255; ++i) {
        exp_[i] = static_cast<uint8_t>(x);
        log_[x] = static_cast<uint8_t>(i);
        x <<= 1;
        if (x & 0x100)
            x ^= kPrimitivePoly;
    }
    for (int i = 255; i < 512; ++i)
        exp_[i] = exp_[i - 255];
    log_[0] = 0; // never consulted: zero operands hit the mul_ zero row

    for (int a = 0; a < 256; ++a) {
        for (int b = 0; b < 256; ++b) {
            mul_[a][b] = (a == 0 || b == 0)
                             ? 0
                             : exp_[log_[a] + log_[b]];
        }
    }
    for (int c = 0; c < 256; ++c) {
        for (int x4 = 0; x4 < 16; ++x4) {
            nibLo_[c][x4] = mul_[c][x4];
            nibHi_[c][x4] = mul_[c][x4 << 4];
        }
    }
}

const Gf256 &
Gf256::instance()
{
    static const Gf256 table;
    return table;
}

SimdLevel
Gf256::bestSimdLevel()
{
    static const SimdLevel level = detectBestLevel();
    return level;
}

uint8_t
Gf256::div(uint8_t a, uint8_t b) const
{
    FUSION_CHECK_MSG(b != 0, "GF(256) division by zero");
    if (a == 0)
        return 0;
    return exp_[255 + log_[a] - log_[b]];
}

uint8_t
Gf256::inv(uint8_t a) const
{
    FUSION_CHECK_MSG(a != 0, "GF(256) inverse of zero");
    return exp_[255 - log_[a]];
}

uint8_t
Gf256::pow(uint8_t a, unsigned e) const
{
    if (e == 0)
        return 1;
    if (a == 0)
        return 0;
    unsigned le = (static_cast<unsigned>(log_[a]) * e) % 255;
    return exp_[le];
}

void
Gf256::mulAccumulateScalar(uint8_t *dst, const uint8_t *src, size_t len,
                           uint8_t c) const
{
    // Branch-free blocked loop over the precomputed product row: no
    // per-byte zero test and no log/exp chain. Unrolled by 8 so the
    // loads pipeline; the row (256 B) stays in L1.
    const uint8_t *row = mul_[c];
    size_t i = 0;
    for (; i + 8 <= len; i += 8) {
        dst[i] ^= row[src[i]];
        dst[i + 1] ^= row[src[i + 1]];
        dst[i + 2] ^= row[src[i + 2]];
        dst[i + 3] ^= row[src[i + 3]];
        dst[i + 4] ^= row[src[i + 4]];
        dst[i + 5] ^= row[src[i + 5]];
        dst[i + 6] ^= row[src[i + 6]];
        dst[i + 7] ^= row[src[i + 7]];
    }
    for (; i < len; ++i)
        dst[i] ^= row[src[i]];
}

void
Gf256::mulAccumulate(uint8_t *dst, const uint8_t *src, size_t len,
                     uint8_t c, SimdLevel level) const
{
    if (c == 0)
        return;
    // Per-level dispatch tallies. These totals are a function of the
    // workload (coefficients and lengths), not the thread count, so
    // snapshots stay byte-identical across FUSION_THREADS settings.
    static obs::Counter &macBytes =
        obs::MetricsRegistry::global().counter("ec.mac_bytes");
    static obs::Counter &callsXor =
        obs::MetricsRegistry::global().counter("ec.mac_calls.xor");
    static obs::Counter &callsScalar =
        obs::MetricsRegistry::global().counter("ec.mac_calls.scalar");
    static obs::Counter &callsSsse3 =
        obs::MetricsRegistry::global().counter("ec.mac_calls.ssse3");
    static obs::Counter &callsAvx2 =
        obs::MetricsRegistry::global().counter("ec.mac_calls.avx2");
    macBytes.add(static_cast<uint64_t>(len));
    if (c == 1) {
        callsXor.add(1);
        // XOR-only path: the compiler vectorizes this on its own.
        for (size_t i = 0; i < len; ++i)
            dst[i] ^= src[i];
        return;
    }
#ifdef FUSION_GF256_X86
    // Clamp the requested level to what the CPU can actually execute.
    if (level > hardwareSimdLevel())
        level = hardwareSimdLevel();
    if (level == SimdLevel::kAvx2) {
        callsAvx2.add(1);
        mulAccumulateAvx2(dst, src, len, nibLo_[c], nibHi_[c]);
        return;
    }
    if (level == SimdLevel::kSsse3) {
        callsSsse3.add(1);
        mulAccumulateSsse3(dst, src, len, nibLo_[c], nibHi_[c]);
        return;
    }
#else
    (void)level;
#endif
    callsScalar.add(1);
    mulAccumulateScalar(dst, src, len, c);
}

} // namespace fusion::ec
