/**
 * @file
 * fusion-lint: project-specific determinism and thread-safety linter.
 *
 * The repo's core contract is that simulation results, metrics
 * snapshots, traces and EXPLAIN output are bit-identical for any
 * FUSION_THREADS value and on any machine. Runtime tests spot-check
 * that; fusion-lint enforces the coding rules that make it true, by
 * token-scanning src/, bench/ and tests/ for the hazard classes that
 * have actually bitten (or nearly bitten) this codebase:
 *
 *   wallclock       raw wall-clock APIs (steady_clock/system_clock/
 *                   time()/...) outside the common/walltime shim —
 *                   timing noise must never feed simulated seconds or
 *                   Cost-Equation decisions.
 *   unseeded-random std::random_device / rand() / srand() — all
 *                   randomness goes through the seedable fusion::Rng.
 *   unordered-iter  range-for over std::unordered_map/unordered_set —
 *                   iteration order is implementation-defined, so any
 *                   walk that feeds serialized output or planning must
 *                   use a sorted container or a sorted snapshot.
 *   pointer-format  pointer values in output (%p, std::hex on
 *                   addresses) — ASLR makes them differ every run.
 *   raw-mutex       std::mutex/condition_variable/lock_guard/... —
 *                   use fusion::Mutex/MutexLock/CondVar
 *                   (common/mutex.h), which carry Clang thread-safety
 *                   annotations so -Wthread-safety can check locking.
 *
 * Suppressions: `// fusion-lint: allow(rule)` on the offending line or
 * the line directly above; `// fusion-lint: allowfile(rule)` anywhere
 * in a file suppresses the rule file-wide. `all` matches every rule.
 * Built-in path allowlists exempt the two sanctioned definition sites
 * (common/walltime for wallclock, common/mutex.h for raw-mutex).
 *
 * This is a token scanner, not a compiler plugin: it strips comments
 * and string/char literals (tracking raw strings), then matches
 * identifier tokens — fast, dependency-free, zero false positives on
 * this codebase, and trivially extensible (see DESIGN.md §10 for the
 * how-to-add-a-rule recipe).
 */
#ifndef FUSION_TOOLS_LINT_H
#define FUSION_TOOLS_LINT_H

#include <cstddef>
#include <map>
#include <string>
#include <vector>

namespace fusion::lint {

/** One rule violation. */
struct Finding {
    std::string file;
    size_t line = 0; // 1-based
    std::string rule;
    std::string message;

    bool
    operator<(const Finding &o) const
    {
        if (file != o.file)
            return file < o.file;
        if (line != o.line)
            return line < o.line;
        return rule < o.rule;
    }
    bool
    operator==(const Finding &o) const
    {
        return file == o.file && line == o.line && rule == o.rule &&
               message == o.message;
    }
};

/** Linter configuration. */
struct Options {
    /** rule -> path substrings exempt from that rule. */
    std::map<std::string, std::vector<std::string>> pathAllow;

    /** Built-in allowlists: the walltime shim and the annotated mutex
     *  wrapper are the sanctioned homes of the banned APIs. */
    static Options defaults();
};

/** Result of linting one file. */
struct FileReport {
    std::vector<Finding> findings;
    size_t suppressed = 0; // findings silenced by allow()/allowfile()
};

/** All rule names, sorted. */
const std::vector<std::string> &ruleNames();

/**
 * Names of variables/members declared as std::unordered_map/set in
 * `content`. The CLI collects these across every scanned file first,
 * so a member declared in foo.h is still recognized when foo.cc
 * iterates it.
 */
std::vector<std::string> collectUnorderedNames(const std::string &content);

/**
 * Lints one file. `extra_unordered_names` augments the file's own
 * declarations for the unordered-iter rule (cross-file members).
 */
FileReport lintSource(
    const std::string &path, const std::string &content,
    const Options &options,
    const std::vector<std::string> &extra_unordered_names = {});

/** Machine-readable report: {"findings":[...],"files_scanned":N,
 *  "suppressed":M}, findings sorted by (file, line, rule). */
std::string reportJson(std::vector<Finding> findings, size_t files_scanned,
                       size_t suppressed);

} // namespace fusion::lint

#endif // FUSION_TOOLS_LINT_H
