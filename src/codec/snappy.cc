#include "snappy.h"

#include <cstring>

#include "common/serde.h"

namespace fusion::codec {

namespace {

constexpr size_t kMinMatchLen = 4;
constexpr size_t kMaxLiteralTagLen = 60; // lengths beyond use suffix bytes
constexpr int kHashBits = 14;
constexpr size_t kHashTableSize = 1 << kHashBits;

uint32_t
load32(const uint8_t *p)
{
    uint32_t v;
    std::memcpy(&v, p, sizeof(v));
    return v;
}

uint32_t
hash32(uint32_t v)
{
    return (v * 0x1e35a7bdU) >> (32 - kHashBits);
}

void
emitLiteral(Bytes &out, const uint8_t *data, size_t len)
{
    FUSION_CHECK(len > 0);
    size_t n = len - 1;
    if (n < kMaxLiteralTagLen) {
        out.push_back(static_cast<uint8_t>(n << 2));
    } else {
        int bytes = 1;
        if (n >= (1ULL << 24))
            bytes = 4;
        else if (n >= (1ULL << 16))
            bytes = 3;
        else if (n >= (1ULL << 8))
            bytes = 2;
        out.push_back(static_cast<uint8_t>((59 + bytes) << 2));
        for (int i = 0; i < bytes; ++i)
            out.push_back(static_cast<uint8_t>(n >> (8 * i)));
    }
    out.insert(out.end(), data, data + len);
}

// Emits one copy element of len in [4, 64] (or [1,64] for far offsets).
void
emitCopyPiece(Bytes &out, size_t offset, size_t len)
{
    if (offset < 2048 && len >= 4 && len <= 11) {
        out.push_back(static_cast<uint8_t>(
            1 | ((len - 4) << 2) | ((offset >> 8) << 5)));
        out.push_back(static_cast<uint8_t>(offset & 0xff));
    } else if (offset < 65536) {
        out.push_back(static_cast<uint8_t>(2 | ((len - 1) << 2)));
        out.push_back(static_cast<uint8_t>(offset & 0xff));
        out.push_back(static_cast<uint8_t>(offset >> 8));
    } else {
        out.push_back(static_cast<uint8_t>(3 | ((len - 1) << 2)));
        for (int i = 0; i < 4; ++i)
            out.push_back(static_cast<uint8_t>(offset >> (8 * i)));
    }
}

void
emitCopy(Bytes &out, size_t offset, size_t len)
{
    // Long matches are split into <=64-byte pieces; keep the final piece
    // >= kMinMatchLen so the 1-byte-offset form stays valid.
    while (len > 64) {
        size_t piece = (len - 64 >= kMinMatchLen) ? 64 : 60;
        emitCopyPiece(out, offset, piece);
        len -= piece;
    }
    emitCopyPiece(out, offset, len);
}

} // namespace

Bytes
snappyCompress(Slice input)
{
    Bytes out;
    BinaryWriter writer(out);
    writer.putVarU64(input.size());

    const uint8_t *base = input.data();
    const size_t n = input.size();
    if (n == 0)
        return out;

    std::vector<uint32_t> table(kHashTableSize, 0);
    // Positions in `table` are stored +1 so 0 means "empty".
    size_t pos = 0;
    size_t literal_start = 0;

    while (pos + kMinMatchLen <= n) {
        uint32_t h = hash32(load32(base + pos));
        uint32_t candidate = table[h];
        table[h] = static_cast<uint32_t>(pos + 1);
        if (candidate != 0) {
            size_t cand = candidate - 1;
            if (load32(base + cand) == load32(base + pos)) {
                // Extend the match as far as possible.
                size_t len = kMinMatchLen;
                while (pos + len < n && base[cand + len] == base[pos + len])
                    ++len;
                if (pos > literal_start) {
                    emitLiteral(out, base + literal_start,
                                pos - literal_start);
                }
                emitCopy(out, pos - cand, len);
                // Seed the table inside the match so later data can
                // reference it (sparse: every 4th byte keeps this cheap).
                size_t end = pos + len;
                for (size_t p = pos + 1; p + kMinMatchLen <= end; p += 4)
                    table[hash32(load32(base + p))] =
                        static_cast<uint32_t>(p + 1);
                pos = end;
                literal_start = pos;
                continue;
            }
        }
        ++pos;
    }
    if (literal_start < n)
        emitLiteral(out, base + literal_start, n - literal_start);
    return out;
}

Result<uint64_t>
snappyUncompressedLength(Slice input)
{
    BinaryReader reader(input);
    return reader.getVarU64();
}

Result<Bytes>
snappyDecompress(Slice input)
{
    BinaryReader reader(input);
    auto ulen = reader.getVarU64();
    if (!ulen.isOk())
        return ulen.status();
    // The format cannot expand beyond ~64 output bytes per input byte
    // (a 3-byte copy element emits at most 64 bytes); a longer claim is
    // corrupt, and trusting it would over-allocate.
    if (ulen.value() > 64 * input.size() + 1024)
        return Status::corruption("snappy length claim implausibly large");

    Bytes out;
    out.reserve(ulen.value());

    while (!reader.atEnd()) {
        auto tag_r = reader.getU8();
        if (!tag_r.isOk())
            return tag_r.status();
        uint8_t tag = tag_r.value();
        switch (tag & 3) {
          case 0: { // literal
            size_t len = (tag >> 2) + 1;
            if (len > kMaxLiteralTagLen) {
                int extra = static_cast<int>(len - kMaxLiteralTagLen);
                uint64_t n = 0;
                for (int i = 0; i < extra; ++i) {
                    auto b = reader.getU8();
                    if (!b.isOk())
                        return b.status();
                    n |= static_cast<uint64_t>(b.value()) << (8 * i);
                }
                len = n + 1;
            }
            auto raw = reader.getRaw(len);
            if (!raw.isOk())
                return raw.status();
            appendBytes(out, raw.value());
            break;
          }
          case 1: { // copy, 1-byte offset
            size_t len = 4 + ((tag >> 2) & 0x7);
            auto b = reader.getU8();
            if (!b.isOk())
                return b.status();
            size_t offset = (static_cast<size_t>(tag >> 5) << 8) | b.value();
            if (offset == 0 || offset > out.size())
                return Status::corruption("snappy copy offset out of range");
            for (size_t i = 0; i < len; ++i)
                out.push_back(out[out.size() - offset]);
            break;
          }
          case 2:
          case 3: { // copy, 2- or 4-byte offset
            size_t len = (tag >> 2) + 1;
            int off_bytes = ((tag & 3) == 2) ? 2 : 4;
            uint64_t offset = 0;
            for (int i = 0; i < off_bytes; ++i) {
                auto b = reader.getU8();
                if (!b.isOk())
                    return b.status();
                offset |= static_cast<uint64_t>(b.value()) << (8 * i);
            }
            if (offset == 0 || offset > out.size())
                return Status::corruption("snappy copy offset out of range");
            for (size_t i = 0; i < len; ++i)
                out.push_back(out[out.size() - offset]);
            break;
          }
        }
    }
    if (out.size() != ulen.value())
        return Status::corruption("snappy output length mismatch");
    return out;
}

} // namespace fusion::codec
