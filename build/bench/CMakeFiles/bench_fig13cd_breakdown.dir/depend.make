# Empty dependencies file for bench_fig13cd_breakdown.
# This may be replaced when dependencies are built.
