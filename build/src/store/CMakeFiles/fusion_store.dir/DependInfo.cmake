
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/store/baseline_store.cc" "src/store/CMakeFiles/fusion_store.dir/baseline_store.cc.o" "gcc" "src/store/CMakeFiles/fusion_store.dir/baseline_store.cc.o.d"
  "/root/repo/src/store/fusion_store.cc" "src/store/CMakeFiles/fusion_store.dir/fusion_store.cc.o" "gcc" "src/store/CMakeFiles/fusion_store.dir/fusion_store.cc.o.d"
  "/root/repo/src/store/manifest.cc" "src/store/CMakeFiles/fusion_store.dir/manifest.cc.o" "gcc" "src/store/CMakeFiles/fusion_store.dir/manifest.cc.o.d"
  "/root/repo/src/store/object_store.cc" "src/store/CMakeFiles/fusion_store.dir/object_store.cc.o" "gcc" "src/store/CMakeFiles/fusion_store.dir/object_store.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/fusion_common.dir/DependInfo.cmake"
  "/root/repo/build/src/codec/CMakeFiles/fusion_codec.dir/DependInfo.cmake"
  "/root/repo/build/src/format/CMakeFiles/fusion_format.dir/DependInfo.cmake"
  "/root/repo/build/src/ec/CMakeFiles/fusion_ec.dir/DependInfo.cmake"
  "/root/repo/build/src/fac/CMakeFiles/fusion_fac.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/fusion_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/fusion_query.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
