/**
 * @file
 * Reproduces paper Fig 4d: storage overhead (w.r.t. optimal) of the
 * padding approach (Adams et al.) under RS(9,6) and RS(14,10) on the
 * four paper-scale dataset chunk models. Paper: up to >100% for some
 * datasets (recipeNLG ~84%).
 */
#include "benchutil/harness.h"
#include "fac/constructors.h"
#include "workload/chunk_models.h"

using namespace fusion;

int
main(int argc, char **argv)
{
    benchutil::obsInit(argc, argv);
    benchutil::banner(
        "Fig 4d", "storage overhead of the padding approach w.r.t optimal");

    struct Row {
        const char *name;
        std::vector<fac::ChunkExtent> model;
    };
    Row rows[] = {
        {"tpc-h lineitem", workload::lineitemChunkModel(4)},
        {"taxi", workload::taxiChunkModel(4)},
        {"recipeNLG", workload::recipeChunkModel(4)},
        {"uk pp", workload::ukppChunkModel(4)},
    };
    const uint64_t block = 100'000'000; // paper block size

    benchutil::TablePrinter table(
        {"dataset", "RS(9,6) overhead %", "RS(14,10) overhead %"});
    for (const auto &row : rows) {
        fac::ObjectLayout rs96 =
            fac::buildPaddingLayout(row.model, 9, 6, block);
        fac::ObjectLayout rs1410 =
            fac::buildPaddingLayout(row.model, 14, 10, block);
        FUSION_CHECK(rs96.validate(row.model).isOk());
        FUSION_CHECK(rs1410.validate(row.model).isOk());
        table.addRow(
            {row.name,
             benchutil::fmt("%.1f", rs96.overheadVsOptimal() * 100.0),
             benchutil::fmt("%.1f", rs1410.overheadVsOptimal() * 100.0)});
    }
    table.print();
    return 0;
}
