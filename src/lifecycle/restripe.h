/**
 * @file
 * Heat-driven re-stripe policy: at compaction time, consult the decayed
 * per-(object, chunk) access counts in obs::ChunkHeatTable and decide
 * which columns of the new generation deserve co-location in dedicated
 * leading stripes (a stats-driven step toward Qd-tree-style
 * workload-aware layout — see PAPERS.md). Pure policy: the store maps
 * the decision onto fac::buildHeatFacLayout.
 */
#ifndef FUSION_LIFECYCLE_RESTRIPE_H
#define FUSION_LIFECYCLE_RESTRIPE_H

#include <cstdint>
#include <string>
#include <vector>

#include "obs/timeseries.h"

namespace fusion::lifecycle {

/** Tuning knobs for decideRestripe. */
struct RestripeOptions {
    /** Below this total decayed heat the signal is noise; keep the
     *  size-only FAC layout. */
    double minTotalHeat = 1.0;
    /** A column is hot when its share exceeds hotFactor x uniform. */
    double hotFactor = 2.0;
};

/** The policy's verdict, recorded in EXPLAIN/telemetry. */
struct RestripeDecision {
    /** Chunk ids of the NEW generation to co-locate (hot columns x all
     *  row groups); empty when !heatDriven. */
    std::vector<uint32_t> hotChunks;
    /** Column indices judged hot, ascending. */
    std::vector<size_t> hotColumns;
    bool heatDriven = false;
    /** "heat-colocate cols=...", "insufficient-heat", "uniform-heat". */
    std::string reason;
};

/**
 * Aggregates the old generation's per-chunk heat by column (chunk id
 * modulo column count — the fpax chunk numbering) and flags columns
 * whose decayed share exceeds `hotFactor` x the uniform share, provided
 * the total heat clears `minTotalHeat`. Hot columns map to the chunk
 * ids they will occupy in the new generation's `new_row_groups` groups.
 */
RestripeDecision decideRestripe(const obs::ChunkHeatTable &heat,
                                double now_seconds,
                                const std::string &old_share_name,
                                size_t num_columns, size_t old_data_chunks,
                                size_t new_row_groups,
                                const RestripeOptions &options = {});

} // namespace fusion::lifecycle

#endif // FUSION_LIFECYCLE_RESTRIPE_H
