/**
 * @file
 * Per-object append delta log — the mutable half of the object
 * lifecycle (ROADMAP "Mutable objects"). Appended row batches are
 * serialized as small standalone fpax files and replicated r ways
 * (never erasure-coded: the paper's small-object regime, where coding
 * overhead dwarfs the data). The log is strictly ordered by sequence
 * number; queries merge every live segment on top of the base
 * generation, and the background Compactor seals a prefix
 * ([0, seal_seq]) before folding it into a fresh base layout.
 */
#ifndef FUSION_LIFECYCLE_DELTA_LOG_H
#define FUSION_LIFECYCLE_DELTA_LOG_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "format/column.h"
#include "format/metadata.h"
#include "query/ast.h"

namespace fusion::lifecycle {

/** One sealed-on-write append batch: a replicated fpax micro-file. */
struct DeltaSegment {
    uint64_t seq = 0;           // position in the log, stamped on append
    uint64_t rows = 0;
    uint64_t bytes = 0;         // serialized fpax file size
    double appendSeconds = 0.0; // simulated time the append landed
    std::string blockKey;       // storage key on every replica
    std::vector<size_t> replicaNodes;
    format::FileMetadata meta;  // footer of the segment file
};

/** Snapshot the Compactor's trigger policy evaluates. */
struct DeltaLogStats {
    size_t segments = 0;
    uint64_t bytes = 0;
    uint64_t rows = 0;
    uint64_t lastSeq = 0;
    double oldestAppendSeconds = -1.0; // -1 when the log is empty
    /** Modeled duration of folding base + deltas into a fresh layout
     *  (filled by the store, which knows the node bandwidths). */
    double estimatedCompactSeconds = 0.0;
};

/** Ordered, monotonically numbered append log for one object. */
class DeltaLog
{
  public:
    /** Stamps `segment.seq` and takes ownership. Returns the seq. */
    uint64_t append(DeltaSegment segment);

    const std::vector<DeltaSegment> &segments() const { return segments_; }
    bool empty() const { return segments_.empty(); }
    size_t size() const { return segments_.size(); }
    uint64_t nextSeq() const { return nextSeq_; }
    /** Seq of the newest segment; only meaningful when !empty(). */
    uint64_t lastSeq() const;

    /** Drops every segment with seq <= `seq` (compaction swap). The
     *  sequence counter never rewinds, so segments appended during a
     *  compaction window keep their place in the order. */
    void dropUpTo(uint64_t seq);

    /** Stats without estimatedCompactSeconds (the host fills that). */
    DeltaLogStats stats() const;

  private:
    uint64_t nextSeq_ = 0;
    std::vector<DeltaSegment> segments_;
};

/** What scanning one segment for one query produced. */
struct DeltaScanResult {
    uint64_t rowsScanned = 0;
    uint64_t rowsMatched = 0;
    /** Stored bytes of the chunks the scan touched (zone-map survivors'
     *  filter chunks + matched row groups' projection chunks) — the
     *  wire/disk cost of shipping the scan's inputs off a replica. */
    uint64_t touchedStoredBytes = 0;
    /** Decode + evaluate CPU work over those chunks. */
    double scanWork = 0.0;
    /** Extra client-reply bytes (plain-encoded selected values of
     *  non-aggregate projections; aggregates merge into scalars). */
    uint64_t clientReplyBytes = 0;
    /** Selected values per resolved projection, in projection order
     *  (empty column for COUNT(*)). */
    std::vector<format::ColumnData> selected;

    struct RowGroupDetail {
        uint32_t rowGroup = 0;
        uint64_t rows = 0;
        double selectivity = 0.0;
    };
    /** Row groups actually scanned (zone-map skips excluded). */
    std::vector<RowGroupDetail> rowGroups;
};

/**
 * Scans one delta segment with an already-resolved query: zone-map
 * row-group skipping, conjunctive predicate bitmaps, row selection per
 * projection — the same real-bytes data plane the base executes, in
 * miniature. `meta` is the segment's footer; `file` its full bytes.
 */
Result<DeltaScanResult> scanDeltaSegment(const format::FileMetadata &meta,
                                         Slice file,
                                         const query::Query &resolved);

} // namespace fusion::lifecycle

#endif // FUSION_LIFECYCLE_DELTA_LOG_H
