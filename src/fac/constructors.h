/**
 * @file
 * Stripe-construction strategies:
 *
 *  - buildFixedLayout:   today's practice (MinIO/Ceph-style): fixed-size
 *                        blocks cut at byte boundaries; chunks may split.
 *  - buildPaddingLayout: Adams et al. (HotStorage '21): pad to block
 *                        boundaries so chunks never split, at the cost
 *                        of physically stored padding.
 *  - buildFacLayout:     the paper's Algorithm 1 (FAC): variable block
 *                        sizes per stripe, greedy bin packing.
 *  - buildOracleLayout:  exact branch-and-bound over the paper's ILP
 *                        objective (Eq. 1), time-limited; stands in for
 *                        the Gurobi oracle.
 *  - buildFusionLayout:  FAC with the storage-overhead threshold
 *                        fallback to fixed blocks (paper §4.2/§5).
 */
#ifndef FUSION_FAC_CONSTRUCTORS_H
#define FUSION_FAC_CONSTRUCTORS_H

#include <cstdint>
#include <vector>

#include "layout.h"

namespace fusion::fac {

/** Fixed-size blocks; chunks split wherever block boundaries fall. */
ObjectLayout buildFixedLayout(const std::vector<ChunkExtent> &chunks,
                              size_t n, size_t k, uint64_t block_size);

/**
 * Fixed-size blocks with alignment padding: a chunk that does not fit
 * in the current block's remainder moves to the next block and the gap
 * is stored as padding. Chunks larger than the block size must still
 * split (alignment is impossible for them).
 */
ObjectLayout buildPaddingLayout(const std::vector<ChunkExtent> &chunks,
                                size_t n, size_t k, uint64_t block_size);

/** Paper Algorithm 1: greedy stripe construction, never splits chunks. */
ObjectLayout buildFacLayout(const std::vector<ChunkExtent> &chunks,
                            size_t n, size_t k);

/** Outcome of the exact solver. */
struct OracleResult {
    ObjectLayout layout;
    bool optimal = false;     // proven optimal within the time budget
    double solveSeconds = 0.0;
    uint64_t nodesExplored = 0;
};

/**
 * Exact branch-and-bound for the paper's bin-packing variant: minimise
 * the sum over bin sets of the largest bin. Falls back to the best
 * found solution when the search budget expires.
 *
 * `time_limit_seconds` is a *deterministic* budget: it is converted to
 * a fixed number of search-node expansions at a built-in calibration
 * rate (see oracle_layout.cc), so the same input and budget yield a
 * bit-identical layout on any machine. `solveSeconds` reports actual
 * wall time for Fig 10a-style plots; it never influences the result.
 */
OracleResult buildOracleLayout(const std::vector<ChunkExtent> &chunks,
                               size_t n, size_t k,
                               double time_limit_seconds);

/** Options for the Fusion put path. */
struct FusionLayoutOptions {
    size_t n = 9;
    size_t k = 6;
    /** Max tolerated overhead vs optimal (paper default: 2%). */
    double overheadThreshold = 0.02;
    /** Block size used when falling back to fixed-size coding. */
    uint64_t fallbackBlockSize = 100ULL << 20;
};

/**
 * FAC with threshold fallback: returns the FAC layout when its overhead
 * is within the threshold, otherwise the fixed layout (which may split
 * chunks but has near-optimal overhead).
 */
ObjectLayout buildFusionLayout(const std::vector<ChunkExtent> &chunks,
                               const FusionLayoutOptions &options);

/**
 * Heat-partitioned FAC (compaction re-stripe): the chunks in
 * `hot_chunk_ids` are packed by Algorithm 1 into their own leading
 * stripes — co-locating the workload's hot set on a small node group —
 * and the remaining chunks into trailing stripes. Falls back to plain
 * FAC when the hot set is empty or covers every chunk. Never splits
 * chunks; overhead can exceed plain FAC (two packings waste more bin
 * tail), which the caller trades against pushdown locality.
 */
ObjectLayout buildHeatFacLayout(const std::vector<ChunkExtent> &chunks,
                                size_t n, size_t k,
                                const std::vector<uint32_t> &hot_chunk_ids);

} // namespace fusion::fac

#endif // FUSION_FAC_CONSTRUCTORS_H
