#include "compactor.h"

#include <algorithm>

namespace fusion::lifecycle {

bool
Compactor::sizeTriggered(const DeltaLogStats &stats) const
{
    return stats.bytes >= policy_.maxDeltaBytes ||
           stats.segments >= policy_.maxDeltaSegments;
}

bool
Compactor::pending(const std::string &object) const
{
    auto it = pending_.find(object);
    return it != pending_.end() && it->second;
}

void
Compactor::noteDeleted(const std::string &object)
{
    // Any in-flight event for the object still fires, but
    // compactObjectNow treats a missing object as a no-op.
    pending_.erase(object);
}

void
Compactor::noteAppend(const std::string &object)
{
    if (!policy_.enabled || pending(object))
        return;
    DeltaLogStats stats = host_.deltaLogStats(object);
    if (stats.segments == 0)
        return;
    if (sizeTriggered(stats)) {
        scheduleFold(object, stats);
    } else if (policy_.maxAgeSeconds > 0.0) {
        pending_[object] = true;
        double deadline =
            stats.oldestAppendSeconds + policy_.maxAgeSeconds;
        double delay = std::max(policy_.minDelaySeconds,
                                deadline - host_.lifecycleNowSeconds());
        host_.lifecycleScheduleAfter(
            delay, [this, object]() { ageCheck(object); });
    }
}

void
Compactor::scheduleFold(const std::string &object,
                        const DeltaLogStats &stats)
{
    pending_[object] = true;
    const uint64_t seal_seq = stats.lastSeq;
    // The fold lands estimatedCompactSeconds in the future: the modeled
    // cost of reading base+deltas and re-encoding the new generation.
    // Until then every query still merges the sealed segments against
    // the old generation — the crash window the recovery tests probe.
    double delay =
        std::max(policy_.minDelaySeconds, stats.estimatedCompactSeconds);
    host_.lifecycleScheduleAfter(delay, [this, object, seal_seq]() {
        runFold(object, seal_seq);
    });
}

void
Compactor::ageCheck(const std::string &object)
{
    pending_[object] = false;
    DeltaLogStats stats = host_.deltaLogStats(object);
    if (stats.segments == 0)
        return;
    double now = host_.lifecycleNowSeconds();
    double age = now - stats.oldestAppendSeconds;
    if (sizeTriggered(stats) || age + 1e-12 >= policy_.maxAgeSeconds) {
        scheduleFold(object, stats);
        return;
    }
    // Deadline still ahead (newer oldest segment after a partial fold):
    // re-arm exactly once per strictly-later deadline, so the event
    // chain is finite.
    pending_[object] = true;
    double delay =
        std::max(policy_.minDelaySeconds,
                 stats.oldestAppendSeconds + policy_.maxAgeSeconds - now);
    host_.lifecycleScheduleAfter(delay,
                                 [this, object]() { ageCheck(object); });
}

void
Compactor::runFold(const std::string &object, uint64_t seal_seq)
{
    Status status = host_.compactObjectNow(object, seal_seq);
    pending_[object] = false;
    if (status.isOk()) {
        ++runs_;
        // Segments appended after the seal may already cross a
        // threshold again (or need an age check).
        noteAppend(object);
    } else {
        // Stay quiescent until the next append re-triggers: re-arming
        // here would keep the DES alive forever on a cluster that can
        // no longer read the base.
        ++aborts_;
    }
}

} // namespace fusion::lifecycle
