/**
 * @file
 * Coordinator hot-chunk cache benchmark. Sweeps Zipf skew (theta) over
 * a population of lineitem objects x coordinator cache size (as a
 * fraction of the fetch-verdict working set) and compares, per cell,
 * the cache-enabled store against an identical cache-off rig:
 *
 *   - storage wire bytes (the four wire.filter.* / wire.projection.*
 *     counters — client request/reply bytes are byte-identical across
 *     cells by construction, since every cell answers the same query
 *     stream with the same results, so they are excluded),
 *   - p50/p99 query latency,
 *   - cache hit rate and evictions.
 *
 * The query template is calibrated to a fetch verdict (selectivity x
 * compressibility >= 1), so without a cache every query re-moves the
 * chunk bytes over the wire; with a cache, resident chunks plan as
 * "cached-local" and pay no storage traffic. Skew concentrates the
 * reference stream on few objects, so even a small cache bends the
 * Cost Equation for most queries — the effect this bench quantifies.
 *
 * Everything runs in simulation, so every number is deterministic and
 * the JSON output can be gated byte-for-byte-stable in CI. Writes
 * BENCH_cache_zipf.json and, with --check, exits nonzero when any
 * metric regressed more than --tolerance vs the checked-in baseline or
 * when the high-skew/10%-cache cell misses the acceptance bound
 * (>= 30% wire-byte reduction and a lower p99 than cache-off).
 *
 * Usage:
 *   bench_cache_zipf [--quick] [--out=PATH] [--check=BASELINE]
 *                    [--tolerance=0.05]
 */
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "benchutil/harness.h"
#include "common/random.h"
#include "obs/timeseries.h"
#include "sim/cluster.h"
#include "store/fusion_store.h"
#include "workload/lineitem.h"
#include "workload/queries.h"

using namespace fusion;

namespace {

struct Rig {
    std::unique_ptr<sim::Cluster> cluster;
    std::unique_ptr<store::FusionStore> store;
    std::vector<std::string> objects;
    std::vector<query::Query> templates; // one fetch-verdict query/object
    uint64_t workingSetBytes = 0;        // stored quantity chunks, summed
};

/**
 * Builds `num_objects` lineitem objects (distinct seeds, identical
 * schema) and one calibrated fetch-verdict query per object. The
 * working set is the stored size of every l_quantity chunk across the
 * population — the byte population the cache competes over, since the
 * query template touches only that column.
 */
Rig
makeRig(size_t num_objects, size_t rows, uint64_t cache_bytes)
{
    Rig rig;
    sim::ClusterConfig config;
    config.numNodes = 9;
    rig.cluster = std::make_unique<sim::Cluster>(config);
    store::StoreOptions options;
    options.cacheBytes = cache_bytes;
    rig.store =
        std::make_unique<store::FusionStore>(*rig.cluster, options);
    if (benchutil::obsOptions().enabled())
        rig.store->obs().tracer.setEnabled(true);

    const format::Schema schema = workload::lineitemSchema();
    const std::string column = schema.column(workload::kQuantity).name;
    for (size_t i = 0; i < num_objects; ++i) {
        char name[32];
        std::snprintf(name, sizeof(name), "lineitem_%02zu", i);
        uint64_t seed = 7 + i;
        auto file = workload::buildLineitemFile(rows, seed);
        FUSION_CHECK(file.isOk());
        FUSION_CHECK(rig.store->put(name, file.value().bytes).isOk());
        format::Table table = workload::makeLineitemTable(rows, seed);
        // Selectivity 0.8 on the narrow-domain quantity column keeps
        // selectivity x compressibility >= 1: a guaranteed fetch
        // verdict, i.e. cacheable wire traffic.
        rig.templates.push_back(workload::microbenchQuery(
            name, column, table.column(workload::kQuantity), 0.8));
        rig.objects.emplace_back(name);

        auto manifest = rig.store->manifest(name);
        FUSION_CHECK(manifest.isOk());
        const format::FileMetadata &meta = manifest.value()->fileMeta;
        for (size_t rg = 0; rg < meta.numRowGroups(); ++rg)
            rig.workingSetBytes +=
                meta.chunk(rg, workload::kQuantity).storedSize;
    }
    return rig;
}

/** Coordinator-to-storage traffic only; see the file comment for why
 *  client wire bytes are excluded. */
uint64_t
storageWireBytes(store::ObjectStore &store)
{
    obs::MetricsRegistry &reg = store.obs().metrics;
    return reg.counter("wire.filter.request_bytes").value() +
           reg.counter("wire.filter.reply_bytes").value() +
           reg.counter("wire.projection.request_bytes").value() +
           reg.counter("wire.projection.reply_bytes").value();
}

struct CellResult {
    uint64_t wireBytes = 0;
    double p50 = 0.0;
    double p99 = 0.0;
    double hitRate = 0.0;
    uint64_t evictions = 0;
    /** Decayed-heat top chunks, captured before the rig dies. */
    std::vector<obs::ChunkHeatTable::HotChunk> hottest;
};

/**
 * Runs `queries` closed-loop requests against a fresh rig whose object
 * choice per request follows the pre-drawn Zipf rank trace (identical
 * across every cache size at a given theta, so cells differ only in
 * cache capacity).
 */
CellResult
runCell(size_t num_objects, size_t rows, uint64_t cache_bytes,
        const std::vector<size_t> &trace)
{
    Rig rig = makeRig(num_objects, rows, cache_bytes);
    benchutil::RunConfig config;
    config.clients = 8;
    config.totalQueries = trace.size();
    benchutil::RunStats stats = benchutil::runClosedLoop(
        *rig.store, config,
        [&](size_t i) { return rig.templates[trace[i]]; });

    CellResult cell;
    cell.wireBytes = storageWireBytes(*rig.store);
    cell.p50 = stats.latency.p50();
    cell.p99 = stats.latency.p99();
    const cache::ChunkCache &cache = rig.store->chunkCache();
    uint64_t looked = cache.hits() + cache.misses();
    cell.hitRate =
        looked == 0 ? 0.0
                    : static_cast<double>(cache.hits()) /
                          static_cast<double>(looked);
    cell.evictions = cache.evictions();
    cell.hottest = rig.store->obs().telemetry.heat().hottest(
        rig.cluster->engine().now(), 8);
    return cell;
}

/** Renders the decayed-heat leaderboard the telemetry layer keeps per
 *  (object, chunk) — the skew the cache exploits, as the heat table
 *  sees it. */
void
printHeatReport(const CellResult &cell, double theta, double frac)
{
    std::printf("hottest chunks (decayed heat, theta=%.2f cache=%.0f%% "
                "of working set):\n",
                theta, frac * 100.0);
    benchutil::TablePrinter heat({"object", "chunk", "heat"});
    for (const auto &hot : cell.hottest)
        heat.addRow({hot.object, benchutil::fmt("%u", hot.chunk),
                     benchutil::fmt("%.2f", hot.heat)});
    heat.print();
}

void
writeJson(const std::string &path, bool quick,
          const std::vector<std::pair<std::string, double>> &metrics)
{
    FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        std::exit(2);
    }
    std::fprintf(f, "{\n  \"bench\": \"cache_zipf\",\n");
    std::fprintf(f, "  \"quick\": %s,\n", quick ? "true" : "false");
    std::fprintf(f, "  \"metrics\": {\n");
    for (size_t i = 0; i < metrics.size(); ++i)
        std::fprintf(f, "    \"%s\": %.6g%s\n", metrics[i].first.c_str(),
                     metrics[i].second,
                     i + 1 < metrics.size() ? "," : "");
    std::fprintf(f, "  }\n}\n");
    std::fclose(f);
}

/** Minimal parser for the flat {"metrics": {"name": number}} schema
 *  this binary writes (same shape as bench_kernels). */
std::map<std::string, double>
readBaselineMetrics(const std::string &path)
{
    FILE *f = std::fopen(path.c_str(), "r");
    if (f == nullptr) {
        std::fprintf(stderr, "cannot read baseline %s\n", path.c_str());
        std::exit(2);
    }
    std::string text;
    char buf[4096];
    size_t got;
    while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0)
        text.append(buf, got);
    std::fclose(f);

    std::map<std::string, double> metrics;
    size_t obj = text.find("\"metrics\"");
    if (obj == std::string::npos)
        return metrics;
    obj = text.find('{', obj);
    size_t end_obj = text.find('}', obj);
    if (obj == std::string::npos || end_obj == std::string::npos)
        return metrics;
    size_t cur = obj;
    while (true) {
        size_t q0 = text.find('"', cur);
        if (q0 == std::string::npos || q0 > end_obj)
            break;
        size_t q1 = text.find('"', q0 + 1);
        size_t colon = text.find(':', q1);
        if (q1 == std::string::npos || colon == std::string::npos ||
            colon > end_obj)
            break;
        char *end = nullptr;
        double v = std::strtod(text.c_str() + colon + 1, &end);
        if (end == text.c_str() + colon + 1)
            break;
        metrics[text.substr(q0 + 1, q1 - q0 - 1)] = v;
        cur = static_cast<size_t>(end - text.c_str());
    }
    return metrics;
}

} // namespace

int
main(int argc, char **argv)
{
    benchutil::obsInit(argc, argv);
    bool quick = false;
    std::string out_path = "BENCH_cache_zipf.json";
    std::string baseline_path;
    double tolerance = 0.05;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--quick")
            quick = true;
        else if (arg.rfind("--out=", 0) == 0)
            out_path = arg.substr(6);
        else if (arg.rfind("--check=", 0) == 0)
            baseline_path = arg.substr(8);
        else if (arg.rfind("--tolerance=", 0) == 0)
            tolerance = std::atof(arg.c_str() + 12);
        else if (arg.rfind("--trace-out=", 0) == 0 ||
                 arg.rfind("--metrics-out=", 0) == 0 ||
                 arg.rfind("--timeseries-out=", 0) == 0)
            continue; // consumed by obsInit
        else {
            std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
            return 2;
        }
    }

    benchutil::banner("cache-zipf",
                      "Coordinator hot-chunk cache under Zipf skew");

    const size_t num_objects = 32;
    const size_t rows = quick ? 1000 : 4000;
    const size_t queries = quick ? 400 : 1500;
    const double thetas[] = {0.0, 0.8, 0.99, 1.2};
    const double cache_fracs[] = {0.05, 0.10, 0.25};

    // The working set depends only on (num_objects, rows), not on the
    // cache; size the fractional caches off a throwaway probe rig.
    const uint64_t working_set =
        makeRig(num_objects, rows, 0).workingSetBytes;
    std::printf("objects=%zu rows=%zu queries=%zu working set=%.2f MB\n\n",
                num_objects, rows, queries,
                static_cast<double>(working_set) / 1e6);

    std::vector<std::pair<std::string, double>> metrics;
    benchutil::TablePrinter table(
        {"theta", "cache %ws", "off wire MB", "on wire MB",
         "wire saved %", "off p50 ms", "on p50 ms", "off p99 ms",
         "on p99 ms", "hit rate", "evictions"});

    int acceptance_failures = 0;
    CellResult heat_cell; // the acceptance cell's heat leaderboard
    for (double theta : thetas) {
        // One rank trace per theta, shared by every cache size so the
        // cells see byte-identical reference streams.
        Rng rng(42);
        ZipfSampler zipf(num_objects, theta);
        std::vector<size_t> trace(queries);
        for (size_t i = 0; i < queries; ++i)
            trace[i] = zipf.sample(rng) - 1; // ranks are 1-based

        CellResult off = runCell(num_objects, rows, 0, trace);
        for (double frac : cache_fracs) {
            uint64_t cache_bytes = static_cast<uint64_t>(
                frac * static_cast<double>(working_set));
            CellResult on =
                runCell(num_objects, rows, cache_bytes, trace);

            double wire_ratio = static_cast<double>(off.wireBytes) /
                                static_cast<double>(on.wireBytes);
            double p99_ratio = off.p99 / on.p99;

            char cell[32];
            std::snprintf(cell, sizeof(cell), "t%03d_c%02d",
                          static_cast<int>(theta * 100.0 + 0.5),
                          static_cast<int>(frac * 100.0 + 0.5));
            metrics.emplace_back(std::string(cell) + "_wire_ratio",
                                 wire_ratio);
            metrics.emplace_back(std::string(cell) + "_p99_ratio",
                                 p99_ratio);
            metrics.emplace_back(std::string(cell) + "_hit_rate",
                                 on.hitRate);

            table.addRow(
                {benchutil::fmt("%.2f", theta),
                 benchutil::fmt("%.0f", frac * 100.0),
                 benchutil::fmt("%.2f",
                                static_cast<double>(off.wireBytes) / 1e6),
                 benchutil::fmt("%.2f",
                                static_cast<double>(on.wireBytes) / 1e6),
                 benchutil::fmt("%.1f", 100.0 * (1.0 - 1.0 / wire_ratio)),
                 benchutil::fmt("%.2f", off.p50 * 1e3),
                 benchutil::fmt("%.2f", on.p50 * 1e3),
                 benchutil::fmt("%.2f", off.p99 * 1e3),
                 benchutil::fmt("%.2f", on.p99 * 1e3),
                 benchutil::fmt("%.2f", on.hitRate),
                 benchutil::fmt("%llu", static_cast<unsigned long long>(
                                            on.evictions))});

            if (theta == 0.99 && frac == 0.10)
                heat_cell = on;

            // Acceptance: high skew with a cache a tenth of the working
            // set must cut wire bytes >= 30% and lower the tail.
            if (theta == 0.99 && frac == 0.10 &&
                (static_cast<double>(on.wireBytes) >
                     0.70 * static_cast<double>(off.wireBytes) ||
                 on.p99 >= off.p99)) {
                std::fprintf(
                    stderr,
                    "ACCEPTANCE FAIL %s: wire %llu vs %llu, "
                    "p99 %.4f ms vs %.4f ms\n",
                    cell, static_cast<unsigned long long>(on.wireBytes),
                    static_cast<unsigned long long>(off.wireBytes),
                    on.p99 * 1e3, off.p99 * 1e3);
                ++acceptance_failures;
            }
        }
    }
    table.print();

    if (!heat_cell.hottest.empty()) {
        std::printf("\n");
        printHeatReport(heat_cell, 0.99, 0.10);
    }

    writeJson(out_path, quick, metrics);
    std::printf("wrote %s\n", out_path.c_str());

    if (!baseline_path.empty()) {
        auto baseline = readBaselineMetrics(baseline_path);
        std::map<std::string, double> current(metrics.begin(),
                                              metrics.end());
        int failures = 0;
        for (const auto &[name, want] : baseline) {
            auto it = current.find(name);
            if (it == current.end())
                continue;
            double floor = want * (1.0 - tolerance);
            bool ok = it->second >= floor;
            std::printf("  check %-28s %10.4f >= %10.4f %s\n",
                        name.c_str(), it->second, floor,
                        ok ? "ok" : "REGRESSED");
            failures += ok ? 0 : 1;
        }
        if (failures > 0) {
            std::fprintf(stderr,
                         "%d cache metric(s) regressed more than "
                         "%.0f%% vs %s\n",
                         failures, tolerance * 100.0,
                         baseline_path.c_str());
            return 1;
        }
        std::printf("all cache metrics within %.0f%% of baseline\n",
                    tolerance * 100.0);
    }
    if (acceptance_failures > 0) {
        std::fprintf(stderr,
                     "%d cell(s) failed the cache acceptance bound\n",
                     acceptance_failures);
        return 1;
    }
    return 0;
}
