/**
 * @file
 * Statistics helpers for the benchmark harness: exact-percentile sample
 * histograms (latency distributions) and streaming moments.
 */
#ifndef FUSION_COMMON_STATS_H
#define FUSION_COMMON_STATS_H

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace fusion {

/**
 * Collects raw samples and answers exact percentile queries. Intended
 * for experiment-sized populations (10^4-10^6 samples), where keeping
 * the raw data is cheaper than managing approximation error.
 */
class SampleHistogram
{
  public:
    void add(double sample) { samples_.push_back(sample); sorted_ = false; }

    size_t count() const { return samples_.size(); }
    bool empty() const { return samples_.empty(); }

    double sum() const;
    double mean() const;
    double min() const;
    double max() const;

    /** Exact p-th percentile by nearest-rank, p in [0, 100]. */
    double percentile(double p) const;

    /**
     * Linear-interpolated p-th percentile (NIST/Excel "inclusive"
     * definition: rank p/100 x (n-1), interpolate between the two
     * closest samples). Nearest-rank percentile() stays the default
     * everywhere; this variant smooths small-sample latency series.
     * Returns 0.0 on an empty histogram; a single sample answers every
     * p with itself.
     */
    double percentileInterpolated(double p) const;

    double p50() const { return percentile(50.0); }
    double p99() const { return percentile(99.0); }

    void clear() { samples_.clear(); sorted_ = false; }

  private:
    void ensureSorted() const;

    mutable std::vector<double> samples_;
    mutable bool sorted_ = false;
};

/**
 * Constant-space running count/mean/min/max/sum plus population
 * variance via Welford's online algorithm (numerically stable even
 * when samples share a large common offset).
 */
class StreamingStats
{
  public:
    void
    add(double sample)
    {
        ++count_;
        sum_ += sample;
        if (sample < min_) min_ = sample;
        if (sample > max_) max_ = sample;
        double delta = sample - welfordMean_;
        welfordMean_ += delta / static_cast<double>(count_);
        m2_ += delta * (sample - welfordMean_);
    }

    uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }

    /** Population variance (divide by n); 0.0 for fewer than 2 samples. */
    double variance() const { return count_ > 1 ? m2_ / count_ : 0.0; }
    double stddev() const;

  private:
    uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
    double welfordMean_ = 0.0;
    double m2_ = 0.0;
};

} // namespace fusion

#endif // FUSION_COMMON_STATS_H
