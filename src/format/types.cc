#include "types.h"

namespace fusion::format {

const char *
physicalTypeName(PhysicalType t)
{
    switch (t) {
      case PhysicalType::kInt32: return "int32";
      case PhysicalType::kInt64: return "int64";
      case PhysicalType::kDouble: return "double";
      case PhysicalType::kString: return "string";
    }
    return "unknown";
}

size_t
physicalTypeWidth(PhysicalType t)
{
    switch (t) {
      case PhysicalType::kInt32: return 4;
      case PhysicalType::kInt64: return 8;
      case PhysicalType::kDouble: return 8;
      case PhysicalType::kString: return 0;
    }
    return 0;
}

Result<size_t>
Schema::columnIndex(const std::string &name) const
{
    for (size_t i = 0; i < columns_.size(); ++i) {
        if (columns_[i].name == name)
            return i;
    }
    return Status::notFound("no column named '" + name + "'");
}

} // namespace fusion::format
