/**
 * @file
 * Small dense matrices over GF(2^8): multiplication, sub-matrix
 * extraction and Gauss-Jordan inversion. Used to derive the systematic
 * Reed-Solomon encoding matrix and the erasure-recovery matrices.
 */
#ifndef FUSION_EC_MATRIX_H
#define FUSION_EC_MATRIX_H

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "gf256.h"

namespace fusion::ec {

/** Row-major matrix of GF(2^8) elements. */
class Matrix
{
  public:
    Matrix() = default;
    Matrix(size_t rows, size_t cols)
        : rows_(rows), cols_(cols), data_(rows * cols, 0)
    {
    }

    static Matrix identity(size_t n);

    /** rows x cols Vandermonde matrix: m[r][c] = r^c. */
    static Matrix vandermonde(size_t rows, size_t cols);

    size_t rows() const { return rows_; }
    size_t cols() const { return cols_; }

    uint8_t
    at(size_t r, size_t c) const
    {
        FUSION_CHECK(r < rows_ && c < cols_);
        return data_[r * cols_ + c];
    }

    void
    set(size_t r, size_t c, uint8_t v)
    {
        FUSION_CHECK(r < rows_ && c < cols_);
        data_[r * cols_ + c] = v;
    }

    const uint8_t *rowData(size_t r) const { return &data_[r * cols_]; }

    Matrix multiply(const Matrix &other) const;

    /** New matrix containing the given rows of this one, in order. */
    Matrix selectRows(const std::vector<size_t> &row_ids) const;

    /** Gauss-Jordan inverse; kInvalidArgument if singular. */
    Result<Matrix> inverse() const;

    /**
     * Finds `cols()` linearly independent rows among `candidates`
     * (returned in the order discovered); kInvalidArgument when the
     * candidate rows have insufficient rank. Used by non-MDS codes
     * (e.g. LRC) to pick a decodable survivor subset.
     */
    Result<std::vector<size_t>>
    selectIndependentRows(const std::vector<size_t> &candidates) const;

    bool operator==(const Matrix &o) const = default;

  private:
    size_t rows_ = 0;
    size_t cols_ = 0;
    std::vector<uint8_t> data_;
};

} // namespace fusion::ec

#endif // FUSION_EC_MATRIX_H
