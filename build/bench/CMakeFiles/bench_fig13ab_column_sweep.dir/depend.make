# Empty dependencies file for bench_fig13ab_column_sweep.
# This may be replaced when dependencies are built.
