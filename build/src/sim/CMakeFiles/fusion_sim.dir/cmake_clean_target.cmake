file(REMOVE_RECURSE
  "libfusion_sim.a"
)
