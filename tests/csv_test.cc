/**
 * @file
 * Tests for CSV import/export: quoting, type parsing, schema inference
 * and round trips into the columnar format.
 */
#include <gtest/gtest.h>

#include "format/csv.h"
#include "format/reader.h"
#include "format/writer.h"

namespace fusion::format {
namespace {

Schema
simpleSchema()
{
    return Schema({{"name", PhysicalType::kString, LogicalType::kNone},
                   {"count", PhysicalType::kInt64, LogicalType::kNone},
                   {"price", PhysicalType::kDouble, LogicalType::kNone}});
}

TEST(CsvReadTest, BasicParsing)
{
    auto t = readCsv("name,count,price\nfoo,3,1.5\nbar,-7,0.25\n",
                     simpleSchema());
    ASSERT_TRUE(t.isOk()) << t.status().toString();
    EXPECT_EQ(t.value().numRows(), 2u);
    EXPECT_EQ(t.value().column(0).strings()[0], "foo");
    EXPECT_EQ(t.value().column(1).int64s()[1], -7);
    EXPECT_DOUBLE_EQ(t.value().column(2).doubles()[1], 0.25);
}

TEST(CsvReadTest, QuotedFields)
{
    auto t = readCsv("name,count,price\n"
                     "\"hello, world\",1,2.0\n"
                     "\"she said \"\"hi\"\"\",2,3.0\n"
                     "\"multi\nline\",3,4.0\n",
                     simpleSchema());
    ASSERT_TRUE(t.isOk()) << t.status().toString();
    EXPECT_EQ(t.value().column(0).strings()[0], "hello, world");
    EXPECT_EQ(t.value().column(0).strings()[1], "she said \"hi\"");
    EXPECT_EQ(t.value().column(0).strings()[2], "multi\nline");
}

TEST(CsvReadTest, CrlfLineEndings)
{
    auto t = readCsv("name,count,price\r\nfoo,1,2.0\r\n", simpleSchema());
    ASSERT_TRUE(t.isOk());
    EXPECT_EQ(t.value().column(0).strings()[0], "foo");
}

TEST(CsvReadTest, NoTrailingNewline)
{
    auto t = readCsv("name,count,price\nfoo,1,2.0", simpleSchema());
    ASSERT_TRUE(t.isOk());
    EXPECT_EQ(t.value().numRows(), 1u);
}

TEST(CsvReadTest, HeaderValidation)
{
    EXPECT_EQ(readCsv("wrong,count,price\nfoo,1,2.0\n", simpleSchema())
                  .status()
                  .code(),
              StatusCode::kCorruption);
    EXPECT_EQ(readCsv("name,count\nfoo,1\n", simpleSchema())
                  .status()
                  .code(),
              StatusCode::kCorruption);
}

TEST(CsvReadTest, MalformedFieldsRejected)
{
    EXPECT_FALSE(
        readCsv("name,count,price\nfoo,notanumber,2.0\n", simpleSchema())
            .isOk());
    EXPECT_FALSE(
        readCsv("name,count,price\nfoo,1,2.0,extra\n", simpleSchema())
            .isOk());
    EXPECT_FALSE(
        readCsv("name,count,price\n\"unterminated,1,2.0\n", simpleSchema())
            .isOk());
}

TEST(CsvReadTest, Int32RangeChecked)
{
    Schema schema({{"v", PhysicalType::kInt32, LogicalType::kNone}});
    EXPECT_TRUE(readCsv("v\n2147483647\n", schema, {}).isOk());
    EXPECT_FALSE(readCsv("v\n2147483648\n", schema, {}).isOk());
}

TEST(CsvWriteTest, RoundTrip)
{
    Table t(simpleSchema());
    t.column(0).append(std::string("plain"));
    t.column(0).append(std::string("with, comma"));
    t.column(0).append(std::string("with \"quote\""));
    for (int i = 0; i < 3; ++i) {
        t.column(1).append(int64_t{i * 10});
        t.column(2).append(i + 0.5);
    }
    std::string csv = writeCsv(t);
    auto back = readCsv(csv, simpleSchema());
    ASSERT_TRUE(back.isOk()) << back.status().toString();
    for (size_t c = 0; c < 3; ++c)
        EXPECT_TRUE(back.value().column(c) == t.column(c)) << "col " << c;
}

TEST(CsvInferTest, TypesFromValues)
{
    auto schema = inferCsvSchema(
        "id,ratio,label\n1,0.5,abc\n2,7,xyz\n-3,1e3,9q\n");
    ASSERT_TRUE(schema.isOk());
    EXPECT_EQ(schema.value().column(0).physical, PhysicalType::kInt64);
    EXPECT_EQ(schema.value().column(1).physical, PhysicalType::kDouble);
    EXPECT_EQ(schema.value().column(2).physical, PhysicalType::kString);
}

TEST(CsvInferTest, NeedsDataRows)
{
    EXPECT_FALSE(inferCsvSchema("a,b\n").isOk());
}

TEST(CsvIntegrationTest, CsvToFpaxAndBack)
{
    std::string csv = "name,count,price\n";
    for (int i = 0; i < 500; ++i)
        csv += "item" + std::to_string(i % 7) + "," +
               std::to_string(i * 3) + "," + std::to_string(i * 0.5) + "\n";

    auto schema = inferCsvSchema(csv);
    ASSERT_TRUE(schema.isOk());
    auto table = readCsv(csv, schema.value());
    ASSERT_TRUE(table.isOk());

    WriterOptions options;
    options.rowGroupRows = 128;
    auto file = writeTable(table.value(), options);
    ASSERT_TRUE(file.isOk());
    auto reader = FileReader::open(Slice(file.value().bytes));
    ASSERT_TRUE(reader.isOk());
    auto back = reader.value().readTable();
    ASSERT_TRUE(back.isOk());
    for (size_t c = 0; c < table.value().numColumns(); ++c)
        EXPECT_TRUE(back.value().column(c) == table.value().column(c));
}

TEST(CsvTest, CustomDelimiter)
{
    CsvOptions options;
    options.delimiter = ';';
    auto t = readCsv("name;count;price\nfoo;1;2.0\n", simpleSchema(),
                     options);
    ASSERT_TRUE(t.isOk());
    EXPECT_EQ(t.value().column(0).strings()[0], "foo");
    std::string out = writeCsv(t.value(), options);
    EXPECT_NE(out.find("name;count;price"), std::string::npos);
}

} // namespace
} // namespace fusion::format
