/**
 * @file
 * Query suites from the paper's evaluation (§6): the single-column
 * microbenchmark with calibrated selectivity, and the four real-world
 * queries of Table 4 (TPC-H Q1/Q6-style and two Timescale taxi
 * queries). Selectivities are calibrated against the generated data by
 * picking literals at the requested quantile.
 */
#ifndef FUSION_WORKLOAD_QUERIES_H
#define FUSION_WORKLOAD_QUERIES_H

#include <string>

#include "format/column.h"
#include "query/ast.h"

namespace fusion::workload {

/** Value at quantile q (0..1) of a column; exact (sorts a copy). */
format::Value quantileLiteral(const format::ColumnData &column, double q);

/**
 * Paper §6 microbenchmark: SELECT col FROM table WHERE col < value,
 * with `value` calibrated on `data` so the selectivity is ~`target`.
 * String columns use a string quantile literal.
 */
query::Query microbenchQuery(const std::string &table,
                             const std::string &column,
                             const format::ColumnData &data,
                             double target_selectivity);

/** Q1 (projection heavy): pricing-summary style, 1 filter (shipdate),
 *  6 projections; paper selectivity 1.4%. */
query::Query lineitemQ1(const std::string &table,
                        const format::Table &lineitem);

/** Q2 (filter heavy): forecasting-revenue style, 3 filters,
 *  2 projections; paper selectivity 5.4%. */
query::Query lineitemQ2(const std::string &table,
                        const format::Table &lineitem);

/** Q3 (high selectivity): rides per day in 2015; COUNT(*) with one
 *  date filter; paper selectivity 37.5%. */
query::Query taxiQ3(const std::string &table, const format::Table &taxi);

/** Q4 (low selectivity): average fare in January 2015; 1 filter,
 *  2 projections; paper selectivity 6.3%. */
query::Query taxiQ4(const std::string &table, const format::Table &taxi);

} // namespace fusion::workload

#endif // FUSION_WORKLOAD_QUERIES_H
