#include "codec.h"

#include "snappy.h"

namespace fusion::codec {

const char *
compressionName(Compression c)
{
    switch (c) {
      case Compression::kNone: return "none";
      case Compression::kSnappy: return "snappy";
    }
    return "unknown";
}

Bytes
compress(Compression c, Slice input)
{
    switch (c) {
      case Compression::kNone: return input.toBytes();
      case Compression::kSnappy: return snappyCompress(input);
    }
    FUSION_CHECK_MSG(false, "unknown compression codec");
    return {};
}

Result<Bytes>
decompress(Compression c, Slice input)
{
    switch (c) {
      case Compression::kNone: return input.toBytes();
      case Compression::kSnappy: return snappyDecompress(input);
    }
    return Status::invalidArgument("unknown compression codec");
}

} // namespace fusion::codec
