#include "chunk_cache.h"

#include <cstdlib>

namespace fusion::cache {

uint64_t
defaultCacheBytesFromEnv()
{
    const char *env = std::getenv("FUSION_CACHE_BYTES");
    if (env == nullptr || *env == '\0')
        return 0;
    char *end = nullptr;
    unsigned long long v = std::strtoull(env, &end, 10);
    return end == env ? 0 : static_cast<uint64_t>(v);
}

ChunkCache::ChunkCache(uint64_t capacity_bytes)
    : capacityBytes_(capacity_bytes)
{
}

void
ChunkCache::bindMetrics(obs::Counter *hits, obs::Counter *misses,
                        obs::Counter *evictions, obs::Gauge *bytes)
{
    hitCounter_ = hits;
    missCounter_ = misses;
    evictionCounter_ = evictions;
    bytesGauge_ = bytes;
    syncBytesGauge();
}

void
ChunkCache::syncBytesGauge()
{
    if (bytesGauge_ != nullptr)
        bytesGauge_->set(static_cast<double>(sizeBytes_));
}

std::shared_ptr<const Bytes>
ChunkCache::lookup(const std::string &object, uint32_t chunk_id)
{
    auto it = index_.find({object, chunk_id});
    if (it == index_.end()) {
        ++misses_;
        if (missCounter_ != nullptr)
            missCounter_->add(1);
        return nullptr;
    }
    ++hits_;
    if (hitCounter_ != nullptr)
        hitCounter_->add(1);
    it->second->visited = true;
    return it->second->bytes;
}

bool
ChunkCache::contains(const std::string &object, uint32_t chunk_id) const
{
    return index_.count({object, chunk_id}) > 0;
}

void
ChunkCache::evictOne()
{
    // The hand resumes where the previous scan stopped; a fresh (or
    // exhausted) hand starts at the tail, the oldest entry.
    if (!handValid_) {
        hand_ = std::prev(queue_.end());
        handValid_ = true;
    }
    // Clear visited bits while advancing toward the head; wrap back to
    // the tail off the head. Terminates: each step clears one bit, so
    // within one full cycle an unvisited entry exists.
    while (hand_->visited) {
        hand_->visited = false;
        if (hand_ == queue_.begin())
            hand_ = std::prev(queue_.end());
        else
            --hand_;
    }
    ++evictions_;
    if (evictionCounter_ != nullptr)
        evictionCounter_->add(1);
    erase(hand_);
}

void
ChunkCache::erase(Queue::iterator it)
{
    if (handValid_ && hand_ == it) {
        // Keep the hand on the next scan position (toward the head);
        // off the head it resets and restarts at the tail.
        if (it == queue_.begin())
            handValid_ = false;
        else
            hand_ = std::prev(it);
    }
    sizeBytes_ -= it->size;
    index_.erase(it->key);
    queue_.erase(it);
    syncBytesGauge();
}

bool
ChunkCache::admit(const std::string &object, uint32_t chunk_id,
                  std::shared_ptr<const Bytes> bytes)
{
    if (!enabled())
        return false;
    Key key{object, chunk_id};
    auto it = index_.find(key);
    if (it != index_.end()) {
        // Re-admission counts as a use; callers may pass null bytes to
        // refresh an entry they know is resident.
        it->second->visited = true;
        return true;
    }
    if (bytes == nullptr || bytes->empty())
        return false;
    const uint64_t size = bytes->size();
    if (size > capacityBytes_)
        return false;
    while (sizeBytes_ + size > capacityBytes_)
        evictOne();
    queue_.push_front(
        Slot{std::move(key), std::move(bytes), nullptr, size, false});
    index_.emplace(queue_.front().key, queue_.begin());
    sizeBytes_ += size;
    ++admissions_;
    syncBytesGauge();
    return true;
}

void
ChunkCache::attachDecoded(const std::string &object, uint32_t chunk_id,
                          std::shared_ptr<const format::ColumnData> decoded)
{
    auto it = index_.find({object, chunk_id});
    if (it != index_.end())
        it->second->decoded = std::move(decoded);
}

std::shared_ptr<const format::ColumnData>
ChunkCache::decoded(const std::string &object, uint32_t chunk_id) const
{
    auto it = index_.find({object, chunk_id});
    return it == index_.end() ? nullptr : it->second->decoded;
}

void
ChunkCache::invalidate(const std::string &object, uint32_t chunk_id)
{
    auto it = index_.find({object, chunk_id});
    if (it != index_.end())
        erase(it->second);
}

void
ChunkCache::invalidateObject(const std::string &object)
{
    // Resident chunks of one object are contiguous in the ordered
    // index: [(object, 0), (object+1, 0)).
    auto it = index_.lower_bound({object, 0});
    while (it != index_.end() && it->first.first == object) {
        auto victim = it++;
        erase(victim->second);
    }
}

void
ChunkCache::clear()
{
    queue_.clear();
    index_.clear();
    sizeBytes_ = 0;
    handValid_ = false;
    syncBytesGauge();
}

std::vector<ChunkCache::Key>
ChunkCache::residentKeys() const
{
    std::vector<Key> keys;
    keys.reserve(queue_.size());
    for (const Slot &slot : queue_)
        keys.push_back(slot.key);
    return keys;
}

} // namespace fusion::cache
