#include "engine.h"

namespace fusion::sim {

void
SimEngine::scheduleAt(SimTime when, std::function<void()> fn)
{
    FUSION_CHECK_MSG(when >= now_, "cannot schedule an event in the past");
    queue_.push(Event{when, nextSeq_++, std::move(fn)});
}

bool
SimEngine::step()
{
    if (queue_.empty())
        return false;
    // priority_queue::top returns const&; the event must be copied
    // out before pop so its callback can schedule more events.
    Event event = queue_.top();
    queue_.pop();
    now_ = event.time;
    ++eventsProcessed_;
    event.fn();
    return true;
}

void
SimEngine::run()
{
    while (step()) {
    }
}

void
SimEngine::runUntil(SimTime until)
{
    while (!queue_.empty() && queue_.top().time <= until) {
        Event event = queue_.top();
        queue_.pop();
        now_ = event.time;
        ++eventsProcessed_;
        event.fn();
    }
    if (now_ < until)
        now_ = until;
}

} // namespace fusion::sim
