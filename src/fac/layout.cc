#include "layout.h"

#include <algorithm>
#include <map>

namespace fusion::fac {

const char *
layoutKindName(LayoutKind kind)
{
    switch (kind) {
      case LayoutKind::kFixed: return "fixed";
      case LayoutKind::kPadding: return "padding";
      case LayoutKind::kFac: return "fac";
      case LayoutKind::kOracle: return "oracle";
    }
    return "unknown";
}

uint64_t
ObjectLayout::parityBytes() const
{
    uint64_t total = 0;
    for (const auto &stripe : stripes)
        total += stripe.blockSize() * (n - k);
    return total;
}

double
ObjectLayout::overheadVsOptimal() const
{
    if (dataBytes == 0)
        return 0.0;
    double optimal = static_cast<double>(dataBytes) *
                     static_cast<double>(n - k) / static_cast<double>(k);
    double extra = static_cast<double>(paddingBytes + parityBytes());
    return (extra - optimal) / optimal;
}

std::vector<uint32_t>
ObjectLayout::chunkSpans(size_t num_chunks) const
{
    std::vector<uint32_t> spans(num_chunks, 0);
    for (const auto &stripe : stripes) {
        for (const auto &block : stripe.dataBlocks) {
            // Count each chunk at most once per block.
            uint32_t last = kPaddingChunkId;
            for (const auto &piece : block.pieces) {
                if (piece.isPadding() || piece.chunkId == last)
                    continue;
                FUSION_CHECK(piece.chunkId < num_chunks);
                ++spans[piece.chunkId];
                last = piece.chunkId;
            }
        }
    }
    return spans;
}

double
ObjectLayout::splitFraction(size_t num_chunks) const
{
    if (num_chunks == 0)
        return 0.0;
    auto spans = chunkSpans(num_chunks);
    size_t split = 0;
    for (uint32_t s : spans)
        split += (s > 1) ? 1 : 0;
    return static_cast<double>(split) / static_cast<double>(num_chunks);
}

Status
ObjectLayout::validate(const std::vector<ChunkExtent> &chunks) const
{
    // Gather pieces per chunk and check contiguous, exact coverage.
    std::map<uint32_t, std::vector<const BlockPiece *>> by_chunk;
    uint64_t seen_data = 0, seen_padding = 0;
    for (const auto &stripe : stripes) {
        if (stripe.dataBlocks.size() > k)
            return Status::internal("stripe has more than k data blocks");
        uint64_t block_size = stripe.blockSize();
        for (const auto &block : stripe.dataBlocks) {
            if (block.size() > block_size)
                return Status::internal("data block exceeds stripe size");
            for (const auto &piece : block.pieces) {
                if (piece.isPadding()) {
                    seen_padding += piece.size;
                } else {
                    by_chunk[piece.chunkId].push_back(&piece);
                    seen_data += piece.size;
                }
            }
        }
    }

    uint64_t expect_data = 0;
    for (const auto &chunk : chunks)
        expect_data += chunk.size;
    if (seen_data != expect_data)
        return Status::internal("layout covers wrong number of data bytes");
    if (seen_padding != paddingBytes)
        return Status::internal("paddingBytes does not match pieces");
    if (dataBytes != expect_data)
        return Status::internal("dataBytes does not match chunks");

    for (const auto &chunk : chunks) {
        auto it = by_chunk.find(chunk.id);
        if (it == by_chunk.end())
            return Status::internal("chunk missing from layout");
        // Pieces of one chunk must tile [0, size) without gaps/overlap.
        std::vector<std::pair<uint64_t, uint64_t>> ranges;
        for (const auto *piece : it->second)
            ranges.emplace_back(piece->chunkOffset, piece->size);
        std::sort(ranges.begin(), ranges.end());
        uint64_t cursor = 0;
        for (const auto &[off, len] : ranges) {
            if (off != cursor)
                return Status::internal("chunk pieces not contiguous");
            cursor += len;
        }
        if (cursor != chunk.size)
            return Status::internal("chunk pieces do not cover chunk");
    }
    return Status::ok();
}

} // namespace fusion::fac
