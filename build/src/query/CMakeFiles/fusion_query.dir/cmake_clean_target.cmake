file(REMOVE_RECURSE
  "libfusion_query.a"
)
