#include "thread_pool.h"

#include <cstdlib>
#include <memory>

#include "obs/metrics.h"

namespace fusion {

namespace {

// Set while a thread is executing batch work; nested parallelFor calls
// from such contexts run inline so the pool cannot deadlock on itself.
thread_local bool tls_in_pool_work = false;

size_t
threadsFromEnv()
{
    const char *env = std::getenv("FUSION_THREADS");
    if (env == nullptr || *env == '\0')
        return 1;
    char *end = nullptr;
    long parsed = std::strtol(env, &end, 10);
    if (end == env || parsed < 1)
        return 1;
    if (parsed > 256)
        return 256;
    return static_cast<size_t>(parsed);
}

std::unique_ptr<ThreadPool> &
sharedSlot()
{
    static std::unique_ptr<ThreadPool> pool =
        std::make_unique<ThreadPool>(threadsFromEnv());
    return pool;
}

} // namespace

ThreadPool::ThreadPool(size_t threads) : threads_(threads == 0 ? 1 : threads)
{
    workers_.reserve(threads_ - 1);
    for (size_t i = 0; i + 1 < threads_; ++i)
        workers_.emplace_back([this]() { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        MutexLock lock(mutex_);
        stopping_ = true;
    }
    wake_.notifyAll();
    for (auto &worker : workers_)
        worker.join();
}

ThreadPool &
ThreadPool::shared()
{
    return *sharedSlot();
}

void
ThreadPool::setSharedThreads(size_t threads)
{
    sharedSlot() = std::make_unique<ThreadPool>(threads);
}

void
ThreadPool::drain(Batch &batch)
{
    tls_in_pool_work = true;
    for (;;) {
        size_t i = batch.next.fetch_add(1, std::memory_order_relaxed);
        if (i >= batch.end)
            break;
        // The batch poster keeps `fn` (and the batch) alive until
        // done == end, so a claimed index may always run fn.
        (*batch.fn)(i);
        if (batch.done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
            batch.end) {
            MutexLock lock(batch.doneMutex);
            batch.doneCv.notifyAll();
        }
    }
    tls_in_pool_work = false;
}

void
ThreadPool::workerLoop()
{
    uint64_t seen = 0;
    for (;;) {
        std::shared_ptr<Batch> batch;
        {
            // Explicit wait loop (not a predicate lambda): the
            // thread-safety analysis checks guarded reads here but
            // cannot see into lambda bodies.
            MutexLock lock(mutex_);
            while (!stopping_ &&
                   (current_ == nullptr || generation_ == seen))
                wake_.wait(mutex_);
            if (stopping_)
                return;
            seen = generation_;
            batch = current_;
        }
        drain(*batch);
    }
}

void
ThreadPool::parallelFor(size_t begin, size_t end,
                        const std::function<void(size_t)> &fn)
{
    if (begin >= end)
        return;
    size_t count = end - begin;
    // Thread-count-invariant instruments only: a gauge of pool width or
    // inline-vs-pooled split counters would make metric snapshots differ
    // across FUSION_THREADS settings and break the determinism contract.
    {
        static obs::Counter &calls =
            obs::MetricsRegistry::global().counter("pool.parallel_for_calls");
        static obs::Counter &items =
            obs::MetricsRegistry::global().counter("pool.parallel_for_items");
        static obs::Histogram &sizes =
            obs::MetricsRegistry::global().histogram(
                "pool.batch_items", obs::exponentialBounds(1.0, 4.0, 8));
        calls.add(1);
        items.add(static_cast<uint64_t>(count));
        sizes.observe(static_cast<double>(count));
    }
    if (threads_ == 1 || count == 1 || tls_in_pool_work) {
        for (size_t i = begin; i < end; ++i)
            fn(i);
        return;
    }

    std::function<void(size_t)> body = [&fn, begin](size_t i) {
        fn(begin + i);
    };
    auto batch = std::make_shared<Batch>();
    batch->fn = &body;
    batch->end = count;
    {
        MutexLock lock(mutex_);
        current_ = batch;
        ++generation_;
    }
    wake_.notifyAll();
    drain(*batch); // the caller works too
    {
        MutexLock lock(batch->doneMutex);
        while (batch->done.load(std::memory_order_acquire) != count)
            batch->doneCv.wait(batch->doneMutex);
    }
    {
        MutexLock lock(mutex_);
        if (current_ == batch)
            current_ = nullptr;
    }
}

} // namespace fusion
