/**
 * @file
 * The analytics object store core. ObjectStore implements the shared
 * machinery — Put (layout + erasure coding + placement), Get (chunk
 * reassembly with degraded reads through RS recovery), node repair,
 * the data plane (real decode / filter / projection with memoization)
 * and the DES query timing flow. Subclasses define how objects are
 * laid out and how queries are planned:
 *
 *   BaselineStore — fixed-size blocks (MinIO/Ceph practice): chunks
 *                   split across nodes; queries reassemble chunks at a
 *                   coordinator before evaluating.
 *   FusionStore   — FAC layout: chunks intact on single nodes; queries
 *                   run the paper's two-stage adaptive pushdown.
 *
 * Query execution is hybrid: results are computed on real bytes (and
 * are identical across stores — asserted in tests), while elapsed time
 * is charged to simulated disk/NIC/CPU resources from the byte counts
 * the plan moves. Repeated identical work is memoized so thousand-query
 * experiments run in seconds.
 */
#ifndef FUSION_STORE_OBJECT_STORE_H
#define FUSION_STORE_OBJECT_STORE_H

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cache/chunk_cache.h"
#include "ec/reed_solomon.h"
#include "lifecycle/compactor.h"
#include "lifecycle/delta_log.h"
#include "manifest.h"
#include "obs/observability.h"
#include "query/ast.h"
#include "query/bitmap.h"
#include "query/parser.h"
#include "sim/cluster.h"

namespace fusion::store {

/** Store-wide configuration. */
struct StoreOptions {
    size_t n = 9;
    size_t k = 6;
    /** Block size for fixed-size coding (baseline and Fusion fallback).
     *  The paper uses 100 MB on ~10 GB files; scale proportionally. */
    uint64_t fixedBlockSize = 4ULL << 20;
    /** FAC fallback threshold (paper: 2%). */
    double overheadThreshold = 0.02;
    /** Bytes of a pushdown/fetch request message. */
    uint64_t requestRpcBytes = 256;
    /** Bytes of the client's query request. */
    uint64_t clientRequestBytes = 512;
    /** Apply the Cost Equation per chunk (Fusion). When false, every
     *  projection on an intact chunk is pushed down. */
    bool adaptivePushdown = true;
    /** Extension (paper future work): compute aggregates on storage
     *  nodes so pure-aggregate projections reply with scalars. */
    bool aggregatePushdown = false;
    /**
     * Coordinator hot-chunk cache capacity in bytes; 0 disables the
     * tier. Chunks the planner fetched to the coordinator are admitted
     * and later queries evaluate them locally, flipping the Cost
     * Equation (see cache/chunk_cache.h). Defaults from the
     * FUSION_CACHE_BYTES environment variable.
     */
    uint64_t cacheBytes = cache::defaultCacheBytesFromEnv();

    // ---- degraded-read robustness (fault injection, see DESIGN.md) ----

    /**
     * A block read counts as timed out when its node is dead or so
     * slowed that the modeled response (slowFactor x rpcLatency)
     * exceeds this bound. Timed-out reads retry with backoff, then
     * reconstruct from parity.
     */
    double readTimeoutSeconds = 1e-3;
    /** Retry attempts before a timed-out block read is declared lost. */
    size_t maxReadRetries = 3;
    /** First retry waits this long; later retries double it... */
    double retryBackoffBaseSeconds = 1e-3;
    /** ...up to this cap (bounded exponential backoff). */
    double retryBackoffMaxSeconds = 8e-3;

    // ---- object lifecycle (append log + compaction, src/lifecycle/) ----

    /** Replication factor for append delta-log segments (small-object
     *  regime: replicated, never erasure-coded). Capped at numNodes. */
    size_t deltaReplicas = 3;
    /** Background compaction triggers; enabled by default (a store
     *  that never appends schedules no events). */
    lifecycle::CompactionPolicy compaction;
};

/** Outcome of a Put. */
struct PutResult {
    fac::LayoutKind layoutKind = fac::LayoutKind::kFixed;
    double overheadVsOptimal = 0.0;
    uint64_t objectBytes = 0;
    uint64_t storedBytes = 0; // data + padding + parity
    size_t numChunks = 0;     // column chunks (pseudo-chunks excluded)
    size_t numStripes = 0;
    double splitFraction = 0.0;
    /** Wall-clock of stripe construction — reporting only; it never
     *  feeds simulated time (which must be reproducible). */
    double layoutSeconds = 0.0;
    double simulatedPutSeconds = 0.0;
};

/** Outcome of a query, including the paper's breakdown dimensions. */
struct QueryOutcome {
    query::QueryResult result;
    double latencySeconds = 0.0;   // simulated wall time
    double diskSeconds = 0.0;      // resource-seconds by class
    double cpuSeconds = 0.0;
    double networkSeconds = 0.0;
    uint64_t networkBytes = 0;     // remote bytes moved for this query
    size_t rowGroupsScanned = 0;
    size_t rowGroupsSkipped = 0;
    size_t filterChunkFetches = 0;   // chunks reassembled for filtering
    size_t filterChunkPushdowns = 0; // filters executed on storage nodes
    size_t projectionPushdowns = 0;
    size_t projectionFetches = 0;
    /** Filter chunks evaluated at the coordinator from the hot-chunk
     *  cache (no wire, no disk). */
    size_t filterChunkCached = 0;
    /** Projection chunks whose verdict the cache flipped to local. */
    size_t projectionCachedLocal = 0;
    /** Pushdowns rerouted to coordinator-side evaluation because the
     *  chunk's node was faulted when the query was planned. */
    size_t pushdownFallbacks = 0;
    /** Blocks this query rebuilt from parity (degraded reads). */
    uint64_t parityReconstructions = 0;
    /** Timed-out block-read attempts this query retried. */
    uint64_t readRetries = 0;
    /** Delta-log segments merged on top of the base generation. */
    size_t deltaSegmentsScanned = 0;
    /** Per-chunk pushdown-decision report; filled when the store's
     *  obs().explainEnabled is set (FusionStore only). */
    std::shared_ptr<const obs::QueryExplain> explain;
};

/** Outcome of an append (lifecycle delta log). */
struct AppendResult {
    uint64_t seq = 0;          // position in the object's delta log
    uint64_t rows = 0;
    uint64_t segmentBytes = 0; // serialized fpax segment size
    size_t replicas = 0;
    double simulatedAppendSeconds = 0.0;
};

/** Base class; see file comment. */
class ObjectStore : public lifecycle::CompactionHost
{
  public:
    ObjectStore(sim::Cluster &cluster, const StoreOptions &options);
    virtual ~ObjectStore();

    /** "baseline" or "fusion". */
    virtual const char *kindName() const = 0;

    /** Stores an object; fpax objects get format-aware treatment. */
    Result<PutResult> put(const std::string &name, Bytes object);

    /**
     * put() plus a simulated write path through the cluster: the client
     * uploads to the coordinator, which streams data and parity blocks
     * to their nodes (NIC + disk, queued against any concurrent work).
     * `done` fires in simulated time with simulatedPutSeconds measured
     * by the DES instead of the analytic model.
     */
    void putAsync(const std::string &name, Bytes object,
                  std::function<void(Result<PutResult>)> done);

    // ---- object lifecycle (src/lifecycle/) ----

    /**
     * Appends rows to an fpax object: the batch is serialized as a
     * standalone fpax segment, replicated deltaReplicas ways (never
     * erasure-coded — the paper's small-object regime) and added to the
     * object's delta log. Readers and queries immediately see the new
     * rows merged on top of the base generation; the background
     * Compactor later seals and folds the log into a fresh FAC layout.
     * The schema must equal the object's schema exactly.
     */
    Result<AppendResult> append(const std::string &name,
                                const format::Table &rows);

    /**
     * append() plus a simulated ingest path: the client uploads the
     * segment to the coordinator, which streams it to the replicas
     * (NIC + disk, queued against concurrent query traffic). `done`
     * fires in simulated time with simulatedAppendSeconds measured by
     * the DES.
     */
    void appendAsync(const std::string &name, const format::Table &rows,
                     std::function<void(Result<AppendResult>)> done);

    /**
     * Synchronously folds the object's entire delta log (if any) into a
     * new base generation — the foreground form of what the background
     * Compactor schedules. No-op when the log is empty.
     */
    Status compactObject(const std::string &name);

    /** The object's delta log, or nullptr when it has none. */
    const lifecycle::DeltaLog *deltaLog(const std::string &name) const;

    /** The background compactor (policy from StoreOptions::compaction). */
    lifecycle::Compactor &compactor() { return *compactor_; }

    // CompactionHost (called by lifecycle::Compactor):
    double lifecycleNowSeconds() const override;
    void lifecycleScheduleAfter(double delay_seconds,
                                std::function<void()> fn) override;
    lifecycle::DeltaLogStats
    deltaLogStats(const std::string &object) const override;
    Status compactObjectNow(const std::string &object,
                            uint64_t seal_seq) override;

    /**
     * Reassembles the full object (degraded-read capable). An object
     * with a non-empty delta log returns the merged materialization —
     * base rows plus appended rows re-serialized under the base's
     * writer options, byte-identical to the post-compaction base.
     */
    Result<Bytes> get(const std::string &name);

    /** Byte-range read of an object. */
    Result<Bytes> get(const std::string &name, uint64_t offset,
                      uint64_t size);

    bool contains(const std::string &name) const;
    Result<const ObjectManifest *> manifest(const std::string &name) const;

    /** Removes an object and drops its blocks from the nodes. */
    Status deleteObject(const std::string &name);

    /** Names of all stored objects, sorted. */
    std::vector<std::string> listObjects() const;

    /** Aggregate capacity statistics for the whole store. */
    struct StoreStats {
        size_t objectCount = 0;
        uint64_t logicalBytes = 0; // sum of object sizes
        uint64_t storedBytes = 0;  // data + padding + parity on nodes
        uint64_t minNodeBytes = 0; // least-loaded storage node
        uint64_t maxNodeBytes = 0; // most-loaded storage node
        double overheadVsOptimal = 0.0; // aggregate, as in the paper

        double
        nodeImbalance() const
        {
            return minNodeBytes == 0
                       ? 0.0
                       : static_cast<double>(maxNodeBytes) /
                             static_cast<double>(minNodeBytes);
        }
    };
    StoreStats stats() const;

    /**
     * Cumulative robustness counters: how often reads hit faulted
     * nodes and what the recovery machinery did about it. Benches and
     * tests assert on these (and on their determinism across runs).
     *
     * The authoritative values live in this store's metrics registry
     * under fault.* names; FaultStats is a compatibility view folded
     * from those counters on demand.
     */
    struct FaultStats {
        uint64_t readRetries = 0;     // backoff retries performed
        uint64_t readTimeouts = 0;    // reads abandoned after retries
        uint64_t parityReconstructions = 0; // blocks rebuilt via EC
        uint64_t degradedChunkReads = 0; // chunk reads needing recovery
        uint64_t pushdownFallbacks = 0;  // pushdowns moved coordinator-side
        double backoffSeconds = 0.0;     // total simulated backoff waits

        bool
        operator==(const FaultStats &other) const
        {
            return readRetries == other.readRetries &&
                   readTimeouts == other.readTimeouts &&
                   parityReconstructions == other.parityReconstructions &&
                   degradedChunkReads == other.degradedChunkReads &&
                   pushdownFallbacks == other.pushdownFallbacks &&
                   backoffSeconds == other.backoffSeconds;
        }
    };
    FaultStats faultStats() const;
    void resetFaultStats();

    /**
     * This store's observability bundle: fault/cache/wire metrics, the
     * simulated-time span tracer and the EXPLAIN toggle. Process-wide
     * instruments (thread pool, EC dispatch) are in
     * obs::MetricsRegistry::global() instead.
     */
    obs::Observability &obs() { return obs_; }
    const obs::Observability &obs() const { return obs_; }

    /**
     * Drops the decode/bitmap/plan memoization caches so subsequent
     * reads hit the (possibly faulted) nodes again. Fault tests use
     * this to force re-execution of the degraded read path. The
     * semantic hot-chunk cache (chunkCache()) is NOT dropped — it
     * models coordinator state and is kept correct by invalidation.
     */
    void dropCaches();

    /**
     * Executes a query asynchronously in simulated time; `done` fires
     * when the simulated reply reaches the client. Call
     * cluster().engine().run() to drive the simulation.
     */
    void queryAsync(const query::Query &q,
                    std::function<void(Result<QueryOutcome>)> done);

    /** Plans, simulates and runs the engine to completion. */
    Result<QueryOutcome> query(const query::Query &q);

    /** Parses SQL, then query(). */
    Result<QueryOutcome> querySql(const std::string &sql);

    /**
     * Rebuilds every block that should live on `node_id` from the other
     * nodes' blocks (after a wipe). Returns blocks rebuilt.
     */
    Result<size_t> repairNode(size_t node_id);

    sim::Cluster &cluster() { return cluster_; }
    const StoreOptions &options() const { return options_; }

    /** One coordinator<->node interaction in a query plan. */
    struct SimTask {
        SimTask() = default;
        SimTask(size_t node_id, uint64_t request_bytes,
                uint64_t disk_bytes, double node_cpu_work,
                uint64_t reply_bytes, double coord_cpu_work,
                const char *span_label = "chunk_fetch")
            : nodeId(node_id), requestBytes(request_bytes),
              diskBytes(disk_bytes), nodeCpuWork(node_cpu_work),
              replyBytes(reply_bytes), coordCpuWork(coord_cpu_work),
              label(span_label)
        {
        }

        size_t nodeId = 0;
        uint64_t requestBytes = 0; // coordinator -> node
        uint64_t diskBytes = 0;    // sequential read at the node
        double nodeCpuWork = 0.0;  // decode/eval bytes at the node
        uint64_t replyBytes = 0;   // node -> coordinator
        double coordCpuWork = 0.0; // decode/eval bytes at coordinator
        /** Span name for the tracer ("chunk_fetch", "pushdown", ...). */
        const char *label = "chunk_fetch";

        // ---- shared-scan metadata (sched::SharedScanScheduler) ----

        /**
         * Identity of the data movement for cross-query dedup. Two
         * tasks with equal non-empty keys (planned against the same
         * store state) represent byte-identical work whose reply can be
         * shared; empty means never shareable.
         */
        std::string shareKey;
        /** Chunk this task serves, or UINT32_MAX for non-chunk tasks. */
        uint32_t chunkId = UINT32_MAX;
        /** Inputs for the shared Cost Equation, set on
         *  projection_pushdown tasks only (see query/cost.h). */
        double selectivity = 0.0;
        uint64_t chunkStoredBytes = 0; // wire cost if fetched instead
        uint64_t chunkPlainBytes = 0;
        /** Coordinator decode work if this pushdown is converted to a
         *  fetch, and the per-extra-consumer row-selection pass. */
        double fetchDecodeWork = 0.0;
        double consumerSelectWork = 0.0;
    };

    /** A fully planned query: real results plus simulation byte counts. */
    struct QueryPlan {
        size_t coordinatorId = 0;
        std::vector<SimTask> filterTasks;
        std::vector<SimTask> projectionTasks;
        /** Coordinator CPU work between the stages (bitmap combine and
         *  any chunk decodes that had to happen at the coordinator). */
        double interStageCoordWork = 0.0;
        /** Pure waiting the coordinator accumulated before the filter
         *  stage (retry backoff against faulted nodes). */
        double extraLatencySeconds = 0.0;
        uint64_t clientReplyBytes = 0;
        QueryOutcome outcome;
    };

    // ---- scheduler interface (sched::SharedScanScheduler) ----

    /**
     * Resolves and plans a query without simulating it: the batch
     * scheduler plans every admitted query first, dedups overlapping
     * tasks across the plans, then drives its own simulation. Fault
     * deltas observed during planning are folded into the plan exactly
     * as queryAsync does.
     */
    Result<std::shared_ptr<QueryPlan>>
    planQueryForBatch(const query::Query &q);

    /**
     * Executes one planned task in simulated time: request transfer,
     * disk, node CPU, reply transfer, coordinator CPU, then one
     * join->signal(). Safe to call only from the simulation driver.
     */
    void executeTask(const SimTask &task, size_t coordinator,
                     std::shared_ptr<sim::Join> join);

    /**
     * Folds one task's resource and wire costs into `out` and the
     * store's wire.* counters (`projection_stage` selects the counter
     * family). The scheduler accounts each deduplicated task exactly
     * once — that is where the shared-scan wire savings become visible.
     */
    void accountTask(const SimTask &task, size_t coordinator,
                     bool projection_stage, QueryOutcome &out) const;

    /** Accounts one query's client request/reply exchange. */
    void accountClientExchange(uint64_t reply_bytes,
                               QueryOutcome &out) const;

    /**
     * The shared-fetch form of a planned projection pushdown: the
     * compressed chunk crosses the wire once to the coordinator, which
     * pays the decode; the pushdown's shared-scan metadata rides along
     * so every converted consumer keys the same `cfetch|obj|chunk`
     * transfer. The admission window calls this when a chunk's merged
     * Cost Equation verdict flips to fetch before its transfer issued.
     */
    SimTask makeSharedFetchTask(const SimTask &pushdown) const;

    /** The store's query-latency histogram (scheduler records into the
     *  same instrument queryAsync uses). */
    obs::Histogram &queryLatencyHistogram() { return *ins_.queryLatency; }

    /**
     * Records one completed query's latency into the histogram, the
     * "query.latency_seconds" sliding window and (when enabled) the
     * flight recorder — the single funnel for both the serial path and
     * the shared-scan scheduler, so windowed rates see every query.
     */
    void recordQueryLatency(double now_seconds, double latency_seconds);

    /** The coordinator hot-chunk cache (disabled when capacity is 0). */
    cache::ChunkCache &chunkCache() { return chunkCache_; }
    const cache::ChunkCache &chunkCache() const { return chunkCache_; }

    /**
     * Admits one chunk's raw bytes into the coordinator cache, pulling
     * pieces directly from healthy nodes' block maps (no fault
     * accounting — this models the coordinator retaining bytes it
     * already moved). Refuses when the cache is off, the object is
     * unknown, or any holding node is unresponsive (degraded bytes
     * never enter the cache). The shared-scan scheduler calls this
     * after converting a merged pushdown into a fetch.
     */
    bool admitChunkToCache(const std::string &object, uint32_t chunk_id);

  protected:
    /** Subclass hook: choose the stripe layout for a new object. */
    virtual fac::ObjectLayout
    buildLayout(const std::vector<fac::ChunkExtent> &extents) = 0;

    /**
     * Subclass hook: layout for a compaction re-stripe with a
     * heat-driven co-location hint (new-generation chunk ids the
     * re-stripe policy wants packed together). Defaults to ignoring
     * the hint; FusionStore packs the hot set into leading stripes.
     */
    virtual fac::ObjectLayout
    buildRestripeLayout(const std::vector<fac::ChunkExtent> &extents,
                        const std::vector<uint32_t> &hot_chunks)
    {
        (void)hot_chunks;
        return buildLayout(extents);
    }

    /** Subclass hook: plan a (resolved) query against a manifest. */
    virtual Result<QueryPlan> planQuery(const ObjectManifest &manifest,
                                        const query::Query &q) = 0;

    /**
     * CPU work units to read-decompress-decode a chunk and evaluate one
     * operation over it: the compressed bytes stream through the
     * decompressor and a quarter of the decoded output is touched per
     * evaluation pass (dictionary decode short-circuits most bytes).
     */
    static double
    chunkDecodeWork(const format::ChunkMeta &chunk)
    {
        return static_cast<double>(chunk.storedSize) +
               0.25 * static_cast<double>(chunk.plainSize);
    }

    /** CPU work to select/materialize rows from an already decoded
     *  chunk (projection on a chunk the node just filtered). */
    static double
    chunkSelectWork(const format::ChunkMeta &chunk)
    {
        return 0.25 * static_cast<double>(chunk.plainSize);
    }

    // ---- data plane (real bytes, memoized) ----

    /** Reassembled raw bytes of one chunk (degraded-read capable). */
    Result<Bytes> readChunkBytes(const ObjectManifest &manifest,
                                 uint32_t chunk_id);

    /** Decoded column chunk, cached. */
    Result<std::shared_ptr<const format::ColumnData>>
    decodedChunk(const ObjectManifest &manifest, size_t row_group,
                 size_t column);

    /**
     * Warms the decode cache for a set of (row group, column) chunks:
     * raw bytes are fetched serially (degraded reads and FaultStats
     * stay deterministic), then decompress/decode fans out on the
     * shared ThreadPool. Results are bit-identical to serial decoding
     * for any FUSION_THREADS value.
     */
    Status prefetchDecodedChunks(
        const ObjectManifest &manifest,
        const std::vector<std::pair<size_t, size_t>> &rg_cols);

    /** Filter bitmap of one predicate over one chunk, cached. */
    Result<std::shared_ptr<const query::Bitmap>>
    chunkFilterBitmap(const ObjectManifest &manifest, size_t row_group,
                      size_t column, const query::Predicate &pred);

    /** Results of the real data-plane execution shared by planners. */
    struct DataPlane {
        query::QueryResult result;
        /** Final ANDed bitmap per row group; empty optional = skipped
         *  via zone maps (no scan needed). */
        std::vector<std::optional<query::Bitmap>> rowGroupBitmaps;
        double selectivity = 0.0; // matched / total rows
        /** Plain-encoded selected-values size per (row group, column)
         *  actually projected — the pushdown reply payload. */
        std::map<std::pair<size_t, size_t>, uint64_t> projectionReplySize;
        /** Snappy-compressed wire size of the final per-row-group
         *  bitmap (what the coordinator forwards for projection
         *  pushdown); 0 for skipped row groups. */
        std::vector<uint64_t> rowGroupBitmapWireSize;
        /** Snappy-compressed wire size of the per-(row group, filter
         *  column) bitmap a storage node returns from filter pushdown
         *  (predicates on the same column are ANDed node-side). */
        std::map<std::pair<size_t, size_t>, uint64_t> filterReplyWireSize;
        uint64_t resultWireBytes = 0;
    };

    /** Runs filters, projections and aggregates on real data. */
    Result<DataPlane> executeDataPlane(const ObjectManifest &manifest,
                                       const query::Query &q);

    /** Expands `SELECT *` and validates column names against a schema. */
    Result<query::Query> resolveQuery(const query::Query &q,
                                      const format::Schema &schema) const;

    /** True if every piece of the chunk lives on one healthy node. */
    bool chunkIntactOnSingleNode(const ObjectManifest &manifest,
                                 uint32_t chunk_id) const;

    /** Pushdown eligibility of a chunk under current node health. */
    enum class ChunkPushdownState {
        kPushable, // intact on a single healthy node
        kFaulted,  // intact on a single node, but that node is faulted
        kSplit,    // split across nodes (fixed layout fallback)
    };
    ChunkPushdownState chunkPushdownState(const ObjectManifest &manifest,
                                          uint32_t chunk_id) const;

    /**
     * Node health as the read path sees it: alive and fast enough that
     * the modeled response stays inside the read timeout. Dead and
     * severely slowed (gray-failed) nodes both fail this test.
     */
    bool nodeResponsive(const sim::StorageNode &node) const;

    /**
     * Looks up a block under the timeout + bounded-backoff retry
     * policy. When the node is unresponsive, retries are modeled at
     * future simulated times (consulting the cluster's fault injector,
     * when armed, so a flapping node can recover mid-retry). Returns
     * nullptr when the block is declared lost — the caller falls back
     * to parity reconstruction. Counts into faultStats().
     */
    const Bytes *fetchBlockWithRetry(const ObjectManifest &manifest,
                                     size_t stripe, size_t block_index);

    /**
     * Health-adaptive retry budget for one read (ROADMAP scale-out
     * item): healthy nodes keep the configured maxReadRetries (so
     * fault-free runs are bit-identical to the fixed policy), nodes in
     * an open timeout streak with recent flap evidence get two extra
     * retries (they tend to come back mid-backoff), and dead nodes
     * fail fast with a single probe retry so reads fall over to parity
     * reconstruction without burning the full backoff ladder.
     */
    size_t retryBudgetFor(size_t node_id, double now_seconds) const;

    /**
     * Refreshes the node's health gauge and, on a band transition,
     * bumps health.updates, emits a `health_update` instant span and
     * records the transition in the flight recorder.
     */
    void noteHealthEvent(double now_seconds, size_t node_id);

    /** Renders + retains a flight-recorder dump (no-op when the
     *  recorder is disabled); bumps health.flight_dumps and emits a
     *  `flight_record_dump` instant span. */
    void dumpFlightRecord(double now_seconds, const char *reason);

    /**
     * Appends fetch tasks that pull a chunk's raw bytes to the
     * coordinator (one task per remote piece; degraded chunks fetch
     * k surviving stripe blocks instead). Returns total fetched bytes.
     */
    uint64_t appendChunkFetchTasks(const ObjectManifest &manifest,
                                   uint32_t chunk_id, size_t coordinator,
                                   double coord_cpu_work,
                                   std::vector<SimTask> &tasks);

    // ---- coordinator hot-chunk cache (cache/chunk_cache.h) ----

    /** What the planner learned from one counted cache probe. */
    struct CacheLookup {
        bool hit = false;
        /** The entry also carries a decoded column layer, so local
         *  evaluation skips the decompress/decode pass. */
        bool decoded = false;
    };

    /**
     * Counted residency probe (emits a `cache_lookup` span and bumps
     * cache.chunk.{hits,misses}). Planners call this once per candidate
     * chunk; a hit flips the Cost Equation verdict to local.
     */
    CacheLookup cacheLookupChunk(const ObjectManifest &manifest,
                                 uint32_t chunk_id);

    /** admitChunkToCache against a resolved manifest. */
    bool cacheAdmitChunk(const ObjectManifest &manifest, uint32_t chunk_id);

    sim::Cluster &cluster_;
    StoreOptions options_;
    ec::ReedSolomon rs_;
    /** Sorted so listObjects/stats/repairNode iterate in a stable,
     *  thread-count-independent order (fusion-lint: unordered-iter). */
    std::map<std::string, ObjectManifest> manifests_;
    obs::Observability obs_;

    /**
     * Counters resolved once at construction so hot paths (and const
     * methods like accountPlanResources) skip the registry's name map.
     */
    struct Instruments {
        obs::Counter *readRetries = nullptr;
        obs::Counter *readTimeouts = nullptr;
        obs::Counter *parityReconstructions = nullptr;
        obs::Counter *degradedChunkReads = nullptr;
        obs::Counter *pushdownFallbacks = nullptr;
        obs::DoubleCounter *backoffSeconds = nullptr;
        obs::Counter *cacheDecodeHit = nullptr;
        obs::Counter *cacheDecodeMiss = nullptr;
        obs::Counter *cacheBitmapHit = nullptr;
        obs::Counter *cacheBitmapMiss = nullptr;
        obs::Counter *cachePlanHit = nullptr;
        obs::Counter *cachePlanMiss = nullptr;
        obs::Counter *wireFilterRequest = nullptr;
        obs::Counter *wireFilterReply = nullptr;
        obs::Counter *wireProjectionRequest = nullptr;
        obs::Counter *wireProjectionReply = nullptr;
        obs::Counter *wireClientRequest = nullptr;
        obs::Counter *wireClientReply = nullptr;
        obs::Counter *cacheChunkHits = nullptr;
        obs::Counter *cacheChunkMisses = nullptr;
        obs::Counter *cacheChunkEvictions = nullptr;
        obs::Gauge *cacheChunkBytes = nullptr;
        obs::Histogram *queryLatency = nullptr;
        obs::Counter *healthUpdates = nullptr;
        obs::Counter *flightDumps = nullptr;
        obs::Counter *appendAppends = nullptr;
        obs::Counter *appendRows = nullptr;
        obs::Counter *appendBytes = nullptr;
        obs::Counter *appendDeltaScans = nullptr;
        obs::Counter *compactionRuns = nullptr;
        obs::Counter *compactionAborts = nullptr;
        obs::Counter *compactionFoldedSegments = nullptr;
        obs::Counter *compactionBytesIn = nullptr;
        obs::Counter *compactionBytesOut = nullptr;
        obs::Counter *compactionHotColocated = nullptr;
        /** health.node.<id> score gauges, indexed by node id. */
        std::vector<obs::Gauge *> healthGauges;
    };
    Instruments ins_;

    /**
     * The semantic hot-chunk cache. Unlike the memoization caches below
     * it survives dropCaches(): entries are kept correct by explicit
     * invalidation (deleteObject, degraded reads touching the chunk),
     * not by being experiment-speed artifacts.
     */
    cache::ChunkCache chunkCache_;

  private:
    void simulateQuery(std::shared_ptr<QueryPlan> plan,
                       std::function<void(Result<QueryOutcome>)> done);
    Result<Bytes> recoverBlock(const ObjectManifest &manifest,
                               size_t stripe, size_t block_index);
    void accountPlanResources(QueryPlan &plan) const;

    // ---- lifecycle internals ----

    /** Builds and writes an object's stripes WITHOUT touching
     *  manifests_ — shared by put() (generation 0) and compaction
     *  (generation + 1 with the re-stripe hint). */
    struct StoredObject {
        ObjectManifest manifest;
        PutResult result;
    };
    Result<StoredObject>
    buildStoredObject(const std::string &name, const Bytes &object,
                      uint64_t generation,
                      const std::vector<uint32_t> &hot_chunks);

    /** Row-group size the base was written with (first full group). */
    uint64_t baseRowGroupRows(const ObjectManifest &manifest) const;

    /** Reads a replicated delta segment (first responsive replica). */
    Result<Bytes> readDeltaSegment(const lifecycle::DeltaSegment &segment);

    /** Base + appended rows as one table (the merged view). */
    Result<format::Table>
    materializeMergedTable(const ObjectManifest &manifest,
                           const std::vector<const lifecycle::DeltaSegment *>
                               &segments);

    /** Merged table re-serialized under the base's writer options. */
    Result<Bytes> materializeMergedBytes(const ObjectManifest &manifest,
                                         const lifecycle::DeltaLog &log);

    /** Folds every live delta segment into the planned base results:
     *  sim tasks, row/aggregate merge, EXPLAIN entries, reply bytes. */
    Status mergeDeltaIntoPlan(const ObjectManifest &manifest,
                              const lifecycle::DeltaLog &log,
                              const query::Query &resolved,
                              QueryPlan &plan);

    /** Drops the object's delta segments from their replicas. */
    void dropDeltaBlocks(const lifecycle::DeltaLog &log,
                         uint64_t up_to_seq);

    /** Purges the decode/bitmap/plan memo entries of one object (its
     *  content changed: delete, overwrite or compaction swap). */
    void purgeObjectMemo(const std::string &name);
    /** Cluster fault-listener callback (crashes dump the recorder). */
    void onFaultEvent(double seconds, int kind, size_t node,
                      double slow_factor);

    /** Last reported health band per node (health_update dedup). */
    std::vector<obs::NodeHealthTracker::Band> lastBand_;
    size_t faultListenerId_ = 0;

    // caches
    std::map<std::pair<std::string, uint64_t>,
             std::shared_ptr<const format::ColumnData>>
        decodeCache_;
    std::map<std::tuple<std::string, uint64_t, std::string>,
             std::shared_ptr<const query::Bitmap>>
        bitmapCache_;
    std::map<std::string, std::shared_ptr<const DataPlane>> planCache_;

    /**
     * Per-object append logs. An entry outlives an emptied log (the
     * sequence counter must never rewind while the object exists) and
     * is erased only by deleteObject.
     */
    std::map<std::string, lifecycle::DeltaLog> deltaLogs_;
    std::unique_ptr<lifecycle::Compactor> compactor_;
};

} // namespace fusion::store

#endif // FUSION_STORE_OBJECT_STORE_H
