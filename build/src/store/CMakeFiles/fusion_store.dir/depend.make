# Empty dependencies file for fusion_store.
# This may be replaced when dependencies are built.
