#include "taxi.h"

#include <cmath>

#include "common/random.h"

namespace fusion::workload {

using format::LogicalType;
using format::PhysicalType;
using format::Schema;
using format::Table;

Schema
taxiSchema()
{
    return Schema({
        {"vendor_id", PhysicalType::kInt32, LogicalType::kNone},
        {"pickup_date", PhysicalType::kInt32, LogicalType::kDate},
        {"pickup_time", PhysicalType::kInt64, LogicalType::kTimestamp},
        {"dropoff_time", PhysicalType::kInt64, LogicalType::kTimestamp},
        {"passenger_count", PhysicalType::kInt32, LogicalType::kNone},
        {"trip_distance", PhysicalType::kDouble, LogicalType::kNone},
        {"trip_duration", PhysicalType::kInt32, LogicalType::kNone},
        {"pickup_longitude", PhysicalType::kDouble, LogicalType::kNone},
        {"pickup_latitude", PhysicalType::kDouble, LogicalType::kNone},
        {"dropoff_longitude", PhysicalType::kDouble, LogicalType::kNone},
        {"dropoff_latitude", PhysicalType::kDouble, LogicalType::kNone},
        {"rate_code", PhysicalType::kInt32, LogicalType::kNone},
        {"store_and_fwd", PhysicalType::kString, LogicalType::kNone},
        {"payment_type", PhysicalType::kInt32, LogicalType::kNone},
        {"fare_amount", PhysicalType::kDouble, LogicalType::kDecimal},
        {"extra", PhysicalType::kDouble, LogicalType::kDecimal},
        {"mta_tax", PhysicalType::kDouble, LogicalType::kDecimal},
        {"tip_amount", PhysicalType::kDouble, LogicalType::kDecimal},
        {"tolls_amount", PhysicalType::kDouble, LogicalType::kDecimal},
        {"total_amount", PhysicalType::kDouble, LogicalType::kDecimal},
    });
}

Table
makeTaxiTable(size_t rows, uint64_t seed)
{
    Rng rng(seed);
    Table t(taxiSchema());

    constexpr int32_t kDaySpan = 1096; // 2015-2017
    for (size_t i = 0; i < rows; ++i) {
        // Trips arrive roughly (not exactly) in time order: a few days
        // of jitter keeps the date column moderately compressible,
        // like the real dataset's pickup timestamps.
        int32_t day = static_cast<int32_t>(
            static_cast<double>(i) / rows * kDaySpan);
        day += static_cast<int32_t>(rng.uniformInt(-4, 4));
        day = std::max(0, std::min(day, kDaySpan - 1));
        int64_t pickup_sec = static_cast<int64_t>(day) * 86400 +
                             rng.uniformInt(0, 86399);
        double distance = std::round(
                              std::abs(rng.normal()) * 2.8 * 100.0 + 100) /
                          100.0;
        int32_t duration = static_cast<int32_t>(
            120 + distance * 180 + rng.uniformInt(0, 600));

        // Metered fares cluster on a coarse grid of common amounts
        // (short hops dominate, plus the JFK flat fare): very low
        // cardinality, hence the extreme compressibility the paper
        // reports for this column (ratio ~152 in Fig on Q4).
        static const double kFareGrid[] = {2.5,  5.0,  7.5,  10.0,
                                           15.0, 20.0, 30.0, 52.0};
        size_t fare_bucket = std::min<size_t>(
            static_cast<size_t>(distance / 1.8), std::size(kFareGrid) - 1);
        double fare = kFareGrid[fare_bucket];
        double extra = (rng.chance(0.3) ? 0.5 : 0.0) +
                       (rng.chance(0.2) ? 1.0 : 0.0);
        double tip = rng.chance(0.6)
                         ? std::round(fare * 0.2 * 4.0) / 4.0
                         : 0.0;
        double tolls = rng.chance(0.05) ? 5.54 : 0.0;

        t.column(kVendorId).append(
            static_cast<int32_t>(rng.uniformInt(1, 2)));
        t.column(kPickupDate).append(day);
        t.column(kPickupTime).append(pickup_sec);
        t.column(kDropoffTime).append(pickup_sec + duration);
        t.column(kPassengerCount)
            .append(static_cast<int32_t>(rng.uniformInt(1, 6)));
        t.column(kTripDistance).append(distance);
        t.column(kTripDuration).append(duration);
        t.column(kPickupLongitude)
            .append(-73.98 + rng.normal() * 0.04);
        t.column(kPickupLatitude).append(40.75 + rng.normal() * 0.03);
        t.column(kDropoffLongitude)
            .append(-73.97 + rng.normal() * 0.05);
        t.column(kDropoffLatitude).append(40.76 + rng.normal() * 0.04);
        t.column(kRateCode).append(
            static_cast<int32_t>(rng.chance(0.9) ? 1 : rng.uniformInt(2, 6)));
        t.column(kStoreAndFwd)
            .append(std::string(rng.chance(0.99) ? "N" : "Y"));
        t.column(kPaymentType).append(
            static_cast<int32_t>(rng.uniformInt(1, 4)));
        t.column(kFareAmount).append(fare);
        t.column(kExtra).append(extra);
        t.column(kMtaTax).append(0.5);
        t.column(kTipAmount).append(tip);
        t.column(kTollsAmount).append(tolls);
        t.column(kTotalAmount)
            .append(fare + extra + 0.5 + tip + tolls + 0.3);
    }
    return t;
}

Result<format::WrittenFile>
buildTaxiFile(size_t rows, uint64_t seed)
{
    Table t = makeTaxiTable(rows, seed);
    format::WriterOptions options;
    options.rowGroupRows = (rows + 15) / 16; // 16 row groups (Table 3)
    return format::writeTable(t, options);
}

} // namespace fusion::workload
