# Empty dependencies file for bench_table4_queries.
# This may be replaced when dependencies are built.
