#include "explain.h"

#include <algorithm>
#include <cstdio>

namespace fusion::obs {

namespace {

std::string
fmt(const char *format, double v)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), format, v);
    return buf;
}

} // namespace

size_t
QueryExplain::pushCount() const
{
    return static_cast<size_t>(
        std::count_if(projections.begin(), projections.end(),
                      [](const ExplainChunk &c) {
                          return c.verdict == "push";
                      }));
}

size_t
QueryExplain::fetchCount() const
{
    return static_cast<size_t>(
        std::count_if(projections.begin(), projections.end(),
                      [](const ExplainChunk &c) {
                          return c.verdict == "fetch";
                      }));
}

size_t
QueryExplain::localCount() const
{
    return static_cast<size_t>(
        std::count_if(projections.begin(), projections.end(),
                      [](const ExplainChunk &c) {
                          return c.verdict == "local";
                      }));
}

std::string
QueryExplain::render() const
{
    std::string out;
    out += "EXPLAIN " + query + "\n";
    out += "table: " + table +
           "  selectivity: " + fmt("%.6f", selectivity) + "\n";
    out += "row groups: " + std::to_string(rowGroupsScanned) +
           " scanned, " + std::to_string(rowGroupsSkipped) +
           " skipped (zone maps)\n";
    out += "filter stage: " + std::to_string(filterPushdowns) +
           " pushdowns, " + std::to_string(filterFetches) + " fetches, " +
           std::to_string(filterCached) + " cached\n";
    out += "projection stage: " + std::to_string(pushCount()) +
           " pushdowns, " + std::to_string(fetchCount()) + " fetches, " +
           std::to_string(localCount()) + " cached-local\n";

    // Column widths over the data actually rendered.
    const char *headers[] = {"chunk", "rg", "column",  "sel",
                             "comp",  "product", "verdict", "reason"};
    std::vector<std::vector<std::string>> rows;
    for (const auto &c : projections) {
        rows.push_back({std::to_string(c.chunkId),
                        std::to_string(c.rowGroup), c.column,
                        fmt("%.4f", c.selectivity),
                        fmt("%.3f", c.compressibility),
                        fmt("%.4f", c.product()), c.verdict, c.reason});
    }
    size_t widths[8];
    for (size_t i = 0; i < 8; ++i)
        widths[i] = std::string(headers[i]).size();
    for (const auto &row : rows)
        for (size_t i = 0; i < 8; ++i)
            widths[i] = std::max(widths[i], row[i].size());

    auto emit_row = [&](const std::vector<std::string> &cells) {
        out += "|";
        for (size_t i = 0; i < 8; ++i) {
            out += " " + cells[i];
            out += std::string(widths[i] - cells[i].size() + 1, ' ');
            out += "|";
        }
        out += "\n";
    };
    emit_row({headers, headers + 8});
    out += "|";
    for (size_t i = 0; i < 8; ++i)
        out += std::string(widths[i] + 2, '-') + "|";
    out += "\n";
    for (const auto &row : rows)
        emit_row(row);
    return out;
}

std::string
QueryExplain::toJson() const
{
    std::string out = "{\n";
    out += "  \"table\": \"" + table + "\",\n";
    out += "  \"selectivity\": " + fmt("%.17g", selectivity) + ",\n";
    out += "  \"row_groups_scanned\": " +
           std::to_string(rowGroupsScanned) + ",\n";
    out += "  \"row_groups_skipped\": " +
           std::to_string(rowGroupsSkipped) + ",\n";
    out += "  \"filter_pushdowns\": " + std::to_string(filterPushdowns) +
           ",\n";
    out += "  \"filter_fetches\": " + std::to_string(filterFetches) +
           ",\n";
    out += "  \"filter_cached\": " + std::to_string(filterCached) + ",\n";
    out += "  \"projections\": [\n";
    for (size_t i = 0; i < projections.size(); ++i) {
        const ExplainChunk &c = projections[i];
        out += "    {\"chunk\": " + std::to_string(c.chunkId) +
               ", \"row_group\": " + std::to_string(c.rowGroup) +
               ", \"column\": \"" + c.column + "\"" +
               ", \"selectivity\": " + fmt("%.17g", c.selectivity) +
               ", \"compressibility\": " +
               fmt("%.17g", c.compressibility) +
               ", \"product\": " + fmt("%.17g", c.product()) +
               ", \"verdict\": \"" + c.verdict + "\"" +
               ", \"reason\": \"" + c.reason + "\"}";
        out += i + 1 < projections.size() ? ",\n" : "\n";
    }
    out += "  ]\n}\n";
    return out;
}

} // namespace fusion::obs
