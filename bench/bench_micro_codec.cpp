/**
 * @file
 * google-benchmark microbenchmarks for the codec substrate: Snappy
 * compress/decompress, RLE encode/decode and bit packing — the
 * operations on the storage nodes' decode path.
 */
#include <benchmark/benchmark.h>

#include "codec/bitpack.h"
#include "codec/rle.h"
#include "codec/snappy.h"
#include "common/random.h"

using namespace fusion;

namespace {

Bytes
makeInput(size_t size, double run_probability)
{
    Rng rng(size);
    Bytes input(size);
    size_t i = 0;
    while (i < input.size()) {
        if (rng.uniform() < run_probability) {
            size_t run = std::min<size_t>(input.size() - i,
                                          rng.uniformInt(8, 64));
            uint8_t v = static_cast<uint8_t>(rng.next());
            for (size_t j = 0; j < run; ++j)
                input[i++] = v;
        } else {
            input[i++] = static_cast<uint8_t>(rng.next());
        }
    }
    return input;
}

void
BM_SnappyCompress(benchmark::State &state)
{
    Bytes input = makeInput(static_cast<size_t>(state.range(0)), 0.7);
    for (auto _ : state) {
        Bytes out = codec::snappyCompress(Slice(input));
        benchmark::DoNotOptimize(out);
    }
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                            state.range(0));
}
BENCHMARK(BM_SnappyCompress)->Arg(64 << 10)->Arg(1 << 20);

void
BM_SnappyDecompress(benchmark::State &state)
{
    Bytes input = makeInput(static_cast<size_t>(state.range(0)), 0.7);
    Bytes compressed = codec::snappyCompress(Slice(input));
    for (auto _ : state) {
        auto out = codec::snappyDecompress(Slice(compressed));
        benchmark::DoNotOptimize(out);
    }
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                            state.range(0));
}
BENCHMARK(BM_SnappyDecompress)->Arg(64 << 10)->Arg(1 << 20);

void
BM_RleEncode(benchmark::State &state)
{
    Rng rng(7);
    std::vector<uint64_t> values(100000);
    for (size_t i = 0; i < values.size(); ++i)
        values[i] = (i / 50) % 16; // long runs of 4-bit codes
    for (auto _ : state) {
        Bytes out = codec::rleEncode(values, 4);
        benchmark::DoNotOptimize(out);
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            values.size());
}
BENCHMARK(BM_RleEncode);

void
BM_RleDecode(benchmark::State &state)
{
    std::vector<uint64_t> values(100000);
    for (size_t i = 0; i < values.size(); ++i)
        values[i] = (i / 50) % 16;
    Bytes encoded = codec::rleEncode(values, 4);
    for (auto _ : state) {
        auto out = codec::rleDecode(Slice(encoded), 4, values.size());
        benchmark::DoNotOptimize(out);
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            values.size());
}
BENCHMARK(BM_RleDecode);

void
BM_BitPack(benchmark::State &state)
{
    Rng rng(9);
    const int width = static_cast<int>(state.range(0));
    std::vector<uint64_t> values(100000);
    for (auto &v : values)
        v = rng.next() & ((1ULL << width) - 1);
    for (auto _ : state) {
        Bytes out;
        codec::BitPacker packer(out, width);
        for (uint64_t v : values)
            packer.put(v);
        packer.flush();
        benchmark::DoNotOptimize(out);
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            values.size());
}
BENCHMARK(BM_BitPack)->Arg(2)->Arg(9)->Arg(17);

} // namespace

BENCHMARK_MAIN();
