/**
 * @file
 * Unit tests for src/common: Status/Result, binary serde, RNG/Zipf and
 * statistics helpers.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <memory>

#include <cmath>
#include <limits>

#include "common/random.h"
#include "common/serde.h"
#include "common/stats.h"
#include "common/status.h"
#include "common/units.h"

namespace fusion {
namespace {

TEST(StatusTest, DefaultIsOk)
{
    Status s;
    EXPECT_TRUE(s.isOk());
    EXPECT_EQ(s.code(), StatusCode::kOk);
    EXPECT_EQ(s.toString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage)
{
    Status s = Status::corruption("bad bytes");
    EXPECT_FALSE(s.isOk());
    EXPECT_EQ(s.code(), StatusCode::kCorruption);
    EXPECT_EQ(s.message(), "bad bytes");
    EXPECT_EQ(s.toString(), "Corruption: bad bytes");
}

TEST(StatusTest, AllFactoryCodes)
{
    EXPECT_EQ(Status::invalidArgument("x").code(),
              StatusCode::kInvalidArgument);
    EXPECT_EQ(Status::notFound("x").code(), StatusCode::kNotFound);
    EXPECT_EQ(Status::alreadyExists("x").code(), StatusCode::kAlreadyExists);
    EXPECT_EQ(Status::outOfRange("x").code(), StatusCode::kOutOfRange);
    EXPECT_EQ(Status::unavailable("x").code(), StatusCode::kUnavailable);
    EXPECT_EQ(Status::failedPrecondition("x").code(),
              StatusCode::kFailedPrecondition);
    EXPECT_EQ(Status::resourceExhausted("x").code(),
              StatusCode::kResourceExhausted);
    EXPECT_EQ(Status::unimplemented("x").code(), StatusCode::kUnimplemented);
    EXPECT_EQ(Status::internal("x").code(), StatusCode::kInternal);
}

TEST(ResultTest, HoldsValue)
{
    Result<int> r(42);
    ASSERT_TRUE(r.isOk());
    EXPECT_EQ(r.value(), 42);
    EXPECT_EQ(r.valueOr(7), 42);
}

TEST(ResultTest, HoldsError)
{
    Result<int> r(Status::notFound("nope"));
    ASSERT_FALSE(r.isOk());
    EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
    EXPECT_EQ(r.valueOr(7), 7);
}

TEST(ResultTest, MoveOnlyValue)
{
    Result<std::unique_ptr<int>> r(std::make_unique<int>(5));
    ASSERT_TRUE(r.isOk());
    std::unique_ptr<int> v = std::move(r).value();
    EXPECT_EQ(*v, 5);
}

TEST(SerdeTest, FixedWidthRoundTrip)
{
    Bytes buf;
    BinaryWriter w(buf);
    w.putU8(0xab);
    w.putU16(0xbeef);
    w.putU32(0xdeadbeef);
    w.putU64(0x0123456789abcdefULL);
    w.putI32(-12345);
    w.putI64(-9876543210LL);
    w.putDouble(3.14159);
    w.putBool(true);

    BinaryReader r{Slice(buf)};
    EXPECT_EQ(r.getU8().value(), 0xab);
    EXPECT_EQ(r.getU16().value(), 0xbeef);
    EXPECT_EQ(r.getU32().value(), 0xdeadbeefU);
    EXPECT_EQ(r.getU64().value(), 0x0123456789abcdefULL);
    EXPECT_EQ(r.getI32().value(), -12345);
    EXPECT_EQ(r.getI64().value(), -9876543210LL);
    EXPECT_DOUBLE_EQ(r.getDouble().value(), 3.14159);
    EXPECT_TRUE(r.getBool().value());
    EXPECT_TRUE(r.atEnd());
}

class VarintRoundTrip : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(VarintRoundTrip, Unsigned)
{
    Bytes buf;
    BinaryWriter w(buf);
    w.putVarU64(GetParam());
    BinaryReader r{Slice(buf)};
    auto v = r.getVarU64();
    ASSERT_TRUE(v.isOk());
    EXPECT_EQ(v.value(), GetParam());
    EXPECT_TRUE(r.atEnd());
}

TEST_P(VarintRoundTrip, SignedBothSigns)
{
    for (int64_t sign : {1, -1}) {
        int64_t x = sign * static_cast<int64_t>(GetParam() >> 1);
        Bytes buf;
        BinaryWriter w(buf);
        w.putVarI64(x);
        BinaryReader r{Slice(buf)};
        auto v = r.getVarI64();
        ASSERT_TRUE(v.isOk());
        EXPECT_EQ(v.value(), x);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Boundaries, VarintRoundTrip,
    ::testing::Values(0ULL, 1ULL, 127ULL, 128ULL, 300ULL, 16383ULL,
                      16384ULL, (1ULL << 32) - 1, 1ULL << 32,
                      (1ULL << 56) + 123, UINT64_MAX));

TEST(SerdeTest, LengthPrefixedRoundTrip)
{
    Bytes buf;
    BinaryWriter w(buf);
    w.putString("hello");
    w.putString("");
    w.putString(std::string(1000, 'x'));

    BinaryReader r{Slice(buf)};
    EXPECT_EQ(r.getString().value(), "hello");
    EXPECT_EQ(r.getString().value(), "");
    EXPECT_EQ(r.getString().value(), std::string(1000, 'x'));
}

TEST(SerdeTest, TruncatedInputIsCorruption)
{
    Bytes buf;
    BinaryWriter w(buf);
    w.putU32(7);
    BinaryReader r{Slice(buf)};
    EXPECT_TRUE(r.getU64().status().code() == StatusCode::kCorruption);
}

TEST(SerdeTest, TruncatedVarintIsCorruption)
{
    Bytes buf = {0x80, 0x80}; // continuation bits but no terminator
    BinaryReader r{Slice(buf)};
    EXPECT_EQ(r.getVarU64().status().code(), StatusCode::kCorruption);
}

TEST(SerdeTest, OverlongVarintIsCorruption)
{
    Bytes buf(11, 0x80); // 11 continuation bytes exceeds 64-bit range
    buf.push_back(0x01);
    BinaryReader r{Slice(buf)};
    EXPECT_EQ(r.getVarU64().status().code(), StatusCode::kCorruption);
}

TEST(SerdeTest, LengthPrefixBeyondInputIsCorruption)
{
    Bytes buf;
    BinaryWriter w(buf);
    w.putVarU64(100); // claims 100 bytes follow
    buf.push_back('x');
    BinaryReader r{Slice(buf)};
    EXPECT_EQ(r.getLengthPrefixed().status().code(),
              StatusCode::kCorruption);
}

TEST(SerdeTest, SeekBoundsChecked)
{
    Bytes buf(4, 0);
    BinaryReader r{Slice(buf)};
    EXPECT_TRUE(r.seek(4).isOk());
    EXPECT_TRUE(r.atEnd());
    EXPECT_EQ(r.seek(5).code(), StatusCode::kOutOfRange);
}

TEST(SliceTest, SubsliceAndEquality)
{
    Bytes buf = {1, 2, 3, 4, 5};
    Slice s(buf);
    EXPECT_EQ(s.size(), 5u);
    Slice sub = s.subslice(1, 3);
    EXPECT_EQ(sub.size(), 3u);
    EXPECT_EQ(sub[0], 2);
    Bytes expect = {2, 3, 4};
    EXPECT_TRUE(sub == Slice(expect));
    EXPECT_EQ(s.subslice(5).size(), 0u);
    // Clamped length.
    EXPECT_EQ(s.subslice(3, 100).size(), 2u);
}

TEST(RngTest, DeterministicAcrossInstances)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 4);
}

TEST(RngTest, UniformIntInRange)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        int64_t v = rng.uniformInt(-5, 5);
        EXPECT_GE(v, -5);
        EXPECT_LE(v, 5);
    }
}

TEST(RngTest, UniformIntCoversAllValues)
{
    Rng rng(7);
    std::vector<int> seen(10, 0);
    for (int i = 0; i < 10000; ++i)
        ++seen[rng.uniformInt(0, 9)];
    for (int count : seen)
        EXPECT_GT(count, 700); // ~1000 expected each
}

TEST(RngTest, UniformInUnitInterval)
{
    Rng rng(9);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, NormalMoments)
{
    Rng rng(11);
    double sum = 0, sq = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        double x = rng.normal();
        sum += x;
        sq += x * x;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.05);
    EXPECT_NEAR(sq / n, 1.0, 0.1);
}

class ZipfSkew : public ::testing::TestWithParam<double>
{
};

TEST_P(ZipfSkew, RanksInBoundsAndMonotoneFrequency)
{
    const double theta = GetParam();
    ZipfSampler zipf(100, theta);
    Rng rng(42);
    std::vector<int> counts(101, 0);
    for (int i = 0; i < 50000; ++i) {
        size_t rank = zipf.sample(rng);
        ASSERT_GE(rank, 1u);
        ASSERT_LE(rank, 100u);
        ++counts[rank];
    }
    if (theta > 0.5) {
        // Rank 1 must dominate rank 50 under real skew.
        EXPECT_GT(counts[1], counts[50] * 2);
    }
    if (theta == 0.0) {
        // Uniform: first and last deciles should be comparable.
        int head = 0, tail = 0;
        for (int i = 1; i <= 10; ++i)
            head += counts[i];
        for (int i = 91; i <= 100; ++i)
            tail += counts[i];
        EXPECT_NEAR(static_cast<double>(head) / tail, 1.0, 0.2);
    }
}

INSTANTIATE_TEST_SUITE_P(Thetas, ZipfSkew,
                         ::testing::Values(0.0, 0.5, 0.99, 1.2));

TEST(ShuffleTest, IsPermutation)
{
    Rng rng(5);
    std::vector<int> v(50);
    std::iota(v.begin(), v.end(), 0);
    auto orig = v;
    rng.shuffle(v);
    auto sorted = v;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(sorted, orig);
    EXPECT_NE(v, orig); // astronomically unlikely to be identity
}

TEST(SampleHistogramTest, ExactPercentiles)
{
    SampleHistogram h;
    for (int i = 1; i <= 100; ++i)
        h.add(i);
    EXPECT_EQ(h.count(), 100u);
    EXPECT_DOUBLE_EQ(h.min(), 1);
    EXPECT_DOUBLE_EQ(h.max(), 100);
    EXPECT_DOUBLE_EQ(h.p50(), 50);
    EXPECT_DOUBLE_EQ(h.p99(), 99);
    EXPECT_DOUBLE_EQ(h.percentile(100), 100);
    EXPECT_DOUBLE_EQ(h.percentile(0), 1);
    EXPECT_DOUBLE_EQ(h.mean(), 50.5);
}

TEST(SampleHistogramTest, UnsortedInsertOrder)
{
    SampleHistogram h;
    for (double v : {9.0, 1.0, 5.0, 3.0, 7.0})
        h.add(v);
    EXPECT_DOUBLE_EQ(h.p50(), 5.0);
    h.add(0.5); // interleave add after a percentile query
    EXPECT_DOUBLE_EQ(h.min(), 0.5);
}

TEST(StreamingStatsTest, Moments)
{
    StreamingStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    for (double v : {2.0, 4.0, 6.0})
        s.add(v);
    EXPECT_EQ(s.count(), 3u);
    EXPECT_DOUBLE_EQ(s.mean(), 4.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 6.0);
    EXPECT_DOUBLE_EQ(s.sum(), 12.0);
}

TEST(StreamingStatsTest, VarianceAndStddev)
{
    StreamingStats s;
    EXPECT_DOUBLE_EQ(s.variance(), 0.0); // empty
    s.add(5.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0); // single sample
    EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
    s.add(9.0);
    // Population variance of {5, 9}: mean 7, squared deviations 4 + 4.
    EXPECT_DOUBLE_EQ(s.variance(), 4.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 2.0);

    StreamingStats t;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        t.add(v);
    EXPECT_DOUBLE_EQ(t.mean(), 5.0);
    EXPECT_NEAR(t.variance(), 4.0, 1e-12);
    EXPECT_NEAR(t.stddev(), 2.0, 1e-12);
}

TEST(StreamingStatsTest, VarianceStableUnderLargeOffset)
{
    // Welford must survive samples sharing a huge common offset, where
    // the naive sum-of-squares formula loses all precision.
    StreamingStats s;
    const double offset = 1e9;
    for (double v : {offset + 4.0, offset + 7.0, offset + 13.0,
                     offset + 16.0})
        s.add(v);
    EXPECT_NEAR(s.variance(), 22.5, 1e-6);
}

TEST(SampleHistogramTest, InterpolatedPercentileEdges)
{
    SampleHistogram h;
    EXPECT_DOUBLE_EQ(h.percentileInterpolated(50), 0.0); // empty

    h.add(42.0); // one sample answers every p with itself
    EXPECT_DOUBLE_EQ(h.percentileInterpolated(0), 42.0);
    EXPECT_DOUBLE_EQ(h.percentileInterpolated(50), 42.0);
    EXPECT_DOUBLE_EQ(h.percentileInterpolated(100), 42.0);

    h.add(44.0); // two samples: linear between them
    EXPECT_DOUBLE_EQ(h.percentileInterpolated(0), 42.0);
    EXPECT_DOUBLE_EQ(h.percentileInterpolated(25), 42.5);
    EXPECT_DOUBLE_EQ(h.percentileInterpolated(50), 43.0);
    EXPECT_DOUBLE_EQ(h.percentileInterpolated(100), 44.0);
}

TEST(SampleHistogramTest, InterpolatedVsNearestRank)
{
    SampleHistogram h;
    for (int i = 1; i <= 100; ++i)
        h.add(i);
    // With 100 samples the interpolated p50 sits between the 50th and
    // 51st order statistics; nearest-rank stays exactly on a sample.
    EXPECT_DOUBLE_EQ(h.percentileInterpolated(50), 50.5);
    EXPECT_DOUBLE_EQ(h.percentile(50), 50.0);
    EXPECT_DOUBLE_EQ(h.percentileInterpolated(100), 100.0);
    EXPECT_DOUBLE_EQ(h.percentileInterpolated(0), 1.0);
    EXPECT_NEAR(h.percentileInterpolated(99), 99.01, 1e-12);
}

TEST(UnitsTest, FormatBytes)
{
    EXPECT_EQ(formatBytes(512), "512 B");
    EXPECT_EQ(formatBytes(2 * kKiB), "2.00 KiB");
    EXPECT_EQ(formatBytes(3 * kMiB + kMiB / 2), "3.50 MiB");
    EXPECT_EQ(formatBytes(kGiB), "1.00 GiB");
}

TEST(UnitsTest, FormatSecondsAdaptiveUnits)
{
    EXPECT_EQ(formatSeconds(1.5), "1.500 s");
    EXPECT_EQ(formatSeconds(0.020), "20.000 ms");
    EXPECT_EQ(formatSeconds(42e-6), "42.000 us");
    EXPECT_EQ(formatSeconds(5e-9), "5.0 ns");
}

TEST(UnitsTest, FormatPercent)
{
    EXPECT_EQ(formatPercent(0.123), "12.3%");
    EXPECT_EQ(formatPercent(0.5, 0), "50%");
    EXPECT_EQ(formatPercent(1.0, 2), "100.00%");
}

TEST(RandomStringTest, LengthAndAlphabet)
{
    Rng rng(3);
    std::string s = randomString(rng, 64);
    EXPECT_EQ(s.size(), 64u);
    for (char c : s)
        EXPECT_TRUE(c >= 'a' && c <= 'z');
}

} // namespace
} // namespace fusion
