/**
 * @file
 * Windowed telemetry over simulated time: sliding-window reducers
 * (count / rate / mean / interpolated percentiles), half-life decayed
 * accumulators, a per-node health tracker feeding the adaptive retry
 * and load-shedding policies, a decayed per-(object, chunk) heat table
 * for the future re-stripe planner, and a crash-scoped flight recorder.
 *
 * Everything here is driven exclusively from the simulation driver
 * thread and stamped with simulated seconds, so dumps are byte-
 * identical for any FUSION_THREADS. Like metrics.h this header is
 * std-only (no fusion_common dependency — fusion_common links
 * fusion_obs, so anything here reaching back up would cycle); the
 * inclusive interpolated percentile is implemented locally with the
 * same rank convention as SampleHistogram::percentileInterpolated
 * (h = (n-1)·p/100, linear between the two straddling samples).
 */
#ifndef FUSION_OBS_TIMESERIES_H
#define FUSION_OBS_TIMESERIES_H

#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace fusion::obs {

/** Tuning knobs for the telemetry layer, in simulated seconds. */
struct TimeseriesOptions {
    /** Span of every named sliding window. */
    double windowSeconds = 0.25;
    /** Half-life of the per-node retry/timeout penalty. */
    double penaltyHalfLifeSeconds = 0.05;
    /** Half-life of the per-node flap evidence (success-after-failure). */
    double flapHalfLifeSeconds = 0.2;
    /** Half-life of chunk-heat access counts. */
    double heatHalfLifeSeconds = 0.5;
    /** Penalty units that halve the health score. */
    double penaltyScoreScale = 4.0;
    /** Flight-recorder ring capacity (events). */
    size_t flightCapacity = 256;
    /** Retained flight dumps before new dumps are dropped. */
    size_t maxFlightDumps = 16;
};

/**
 * Sliding window of (seconds, value) samples. Samples must arrive in
 * non-decreasing time order (the DES driver guarantees this); eviction
 * happens on observe() and advance().
 */
class WindowReducer
{
  public:
    explicit WindowReducer(double window_seconds = 0.25);

    void observe(double seconds, double value);
    /** Drop samples older than seconds - window. */
    void advance(double seconds);

    size_t count() const;
    /** Samples per second over the window span. */
    double rate() const;
    /** Mean of resident samples; 0 when empty. */
    double mean() const;
    /**
     * Inclusive interpolated percentile of resident samples, p in
     * [0, 100]. 0 when empty; a single sample answers every p.
     */
    double percentile(double p) const;
    double windowSeconds() const { return window_; }

  private:
    double window_;
    std::deque<std::pair<double, double>> samples_;
};

/**
 * Exponentially decayed accumulator: add(t, w) first decays the value
 * by 2^(-(t - last)/halfLife), then adds w. valueAt(t) decays without
 * mutating. Times must be non-decreasing.
 */
class DecayCounter
{
  public:
    explicit DecayCounter(double half_life_seconds = 1.0);

    void add(double seconds, double weight);
    double valueAt(double seconds) const;
    double lastSeconds() const { return last_; }

  private:
    double halfLife_;
    double value_ = 0.0;
    double last_ = 0.0;
};

/**
 * Per-node health estimate blending decayed retry/timeout penalties
 * with flap evidence (a success observed while a timeout streak was
 * open). score() is exactly 1.0 for a node that never misbehaved, so
 * healthy runs are bit-identical with and without the tracker.
 */
class NodeHealthTracker
{
  public:
    enum class Band : uint8_t { kHealthy = 0, kFlapping = 1, kDead = 2 };

    void configure(size_t num_nodes, const TimeseriesOptions &options);

    void recordRetry(double seconds, size_t node, double backoff_seconds);
    void recordTimeout(double seconds, size_t node);
    void recordSuccess(double seconds, size_t node);

    /** Health in (0, 1]; 2^(-penalty/scale), 1.0 when penalty is 0. */
    double score(size_t node, double seconds) const;
    Band band(size_t node, double seconds) const;
    double penalty(size_t node, double seconds) const;
    double flapEvidence(size_t node, double seconds) const;
    size_t consecutiveTimeouts(size_t node) const;
    size_t numNodes() const { return nodes_.size(); }

    static const char *bandName(Band band);

  private:
    struct NodeState {
        DecayCounter penalty;
        DecayCounter flap;
        size_t consecutiveTimeouts = 0;
    };

    double scoreScale_ = 4.0;
    std::vector<NodeState> nodes_;
};

/**
 * Decayed per-(object, chunk) access counts. Fed by cache lookups and
 * fetch/pushdown task creation; read by bench_cache_zipf's heat report
 * and, eventually, the workload-adaptive re-stripe planner.
 */
class ChunkHeatTable
{
  public:
    struct HotChunk {
        std::string object;
        uint32_t chunk = 0;
        double heat = 0.0;
    };

    void configure(const TimeseriesOptions &options);

    void recordAccess(double seconds, const std::string &object,
                      uint32_t chunk, double weight = 1.0);
    double heat(const std::string &object, uint32_t chunk,
                double seconds) const;
    /** Top k by decayed heat (desc), ties broken by key (asc). */
    std::vector<HotChunk> hottest(double seconds, size_t k) const;
    size_t size() const { return heat_.size(); }

    /**
     * Drops every entry recorded for `object`, including its
     * generation-qualified ("name@gN") and delta-log ("name#delta")
     * aliases, so deleteObject and compaction swaps never leave stale
     * chunks for the re-stripe policy or the fusion_top leaderboard.
     */
    void evictObject(const std::string &object);

  private:
    double halfLife_ = 0.5;
    std::map<std::pair<std::string, uint32_t>, DecayCounter> heat_;
};

/**
 * Fixed-size ring of recent telemetry events, dumped as canonical JSON
 * on degraded-read entry or a fault-schedule crash for post-mortem
 * diffing. Disabled by default so the store's disabled-observability
 * overhead guard is unaffected.
 */
class FlightRecorder
{
  public:
    void configure(const TimeseriesOptions &options);

    void setEnabled(bool enabled) { enabled_ = enabled; }
    bool enabled() const { return enabled_; }

    /**
     * Append one event. kind must be a string literal; detail is the
     * body of a JSON object ("\"node\": 3") or empty.
     */
    void record(double seconds, const char *kind, std::string detail);
    /** Render + retain a dump of the current ring; returns the JSON. */
    std::string dump(double seconds, const std::string &reason);

    const std::vector<std::string> &dumps() const { return dumps_; }
    size_t eventCount() const { return events_.size(); }
    void clear();

  private:
    struct Event {
        double seconds = 0.0;
        const char *kind = "";
        std::string detail;
    };

    bool enabled_ = false;
    size_t capacity_ = 256;
    size_t maxDumps_ = 16;
    size_t head_ = 0; // next slot to overwrite once the ring is full
    std::vector<Event> events_;
    std::vector<std::string> dumps_;
};

/**
 * The per-store telemetry bundle: node health, chunk heat, named
 * sliding windows and the flight recorder, with one canonical JSON
 * snapshot (sorted keys, %.17g doubles) for byte comparison.
 */
class Telemetry
{
  public:
    Telemetry();

    void configure(const TimeseriesOptions &options);
    const TimeseriesOptions &options() const { return options_; }

    NodeHealthTracker &health() { return health_; }
    const NodeHealthTracker &health() const { return health_; }
    ChunkHeatTable &heat() { return heat_; }
    const ChunkHeatTable &heat() const { return heat_; }
    FlightRecorder &flight() { return flight_; }
    const FlightRecorder &flight() const { return flight_; }

    /** Named sliding window, created on first use. */
    WindowReducer &window(const std::string &name);

    /**
     * Canonical snapshot: {"now", "nodes", "chunks", "windows",
     * "flight_dumps"}. Windows are advanced to `seconds` first so two
     * snapshots at the same simulated time render identically.
     */
    std::string toJson(double seconds, size_t hottest_chunks = 10);

  private:
    TimeseriesOptions options_;
    NodeHealthTracker health_;
    ChunkHeatTable heat_;
    FlightRecorder flight_;
    std::map<std::string, WindowReducer> windows_;
};

} // namespace fusion::obs

#endif // FUSION_OBS_TIMESERIES_H
