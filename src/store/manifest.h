/**
 * @file
 * Per-object bookkeeping: the stripe layout, block placement, and the
 * chunk location map (paper §5, "Metadata Management"). The manifest is
 * what Fusion replicates k+1 ways; in the simulator it lives with the
 * store and its durability is modeled, not enforced.
 */
#ifndef FUSION_STORE_MANIFEST_H
#define FUSION_STORE_MANIFEST_H

#include <map>
#include <string>
#include <vector>

#include "fac/layout.h"
#include "format/metadata.h"

namespace fusion::store {

/** Where one piece of a chunk physically lives. */
struct PieceLocation {
    size_t stripe = 0;      // stripe index within the object
    size_t blockIndex = 0;  // data block index within the stripe [0, k)
    uint64_t blockOffset = 0; // byte offset of the piece inside the block
    uint64_t chunkOffset = 0; // byte offset of the piece inside the chunk
    uint64_t size = 0;
};

/** Complete placement record for one stored object. */
struct ObjectManifest {
    std::string name;
    uint64_t objectSize = 0;
    bool isFpax = false;
    format::FileMetadata fileMeta; // valid when isFpax

    /**
     * Base-layout generation. 0 for the original put(); compaction
     * re-encodes base+deltas under generation+1 and swaps the manifest
     * atomically. Block keys and scheduler share keys embed the
     * generation (for g > 0) so in-flight shared scans against a
     * superseded generation can never alias the new one.
     */
    uint64_t generation = 0;

    /**
     * Chunk ids the heat-driven re-stripe policy chose to co-locate in
     * dedicated leading stripes at compaction time. Empty when the
     * layout was not heat-informed.
     */
    std::vector<uint32_t> hotChunkIds;

    fac::ObjectLayout layout;
    /** Chunk extents the layout was built over, indexed by chunk id.
     *  For fpax objects: the column chunks in file order, plus two
     *  pseudo-chunks for the file header and footer bytes. */
    std::vector<fac::ChunkExtent> extents;
    /** Ids of the pseudo-chunks (header, footer); empty if none. */
    std::vector<uint32_t> metaChunkIds;

    /** Node ids per stripe for all n blocks (k data + n-k parity). */
    std::vector<std::vector<size_t>> stripeNodes;

    /** Location map: pieces of each chunk id, in chunk-offset order. */
    std::vector<std::vector<PieceLocation>> chunkPieces;

    /** One materialized (non-implicit-zero) block of this object. */
    struct BlockRef {
        size_t stripe = 0;
        size_t blockIndex = 0; // [0, n): data and parity
        uint64_t size = 0;     // true (unpadded) size
    };

    /**
     * Node shard of the location map: every block of this object that
     * lives on a given node, sorted by (stripe, blockIndex). Lets
     * repair and placement queries touch only one node's blocks instead
     * of scanning stripes x n — the O(nodes) walk the 100+-node
     * experiments cannot afford. Sorted (std::map) so iteration is
     * deterministic wherever a caller walks all shards.
     */
    std::map<size_t, std::vector<BlockRef>> nodeBlocks;

    /** Number of column chunks (excluding pseudo-chunks). */
    size_t
    numDataChunks() const
    {
        return extents.size() - metaChunkIds.size();
    }

    /** Chunk id for (row group, column) of an fpax object. */
    uint32_t
    chunkIdFor(size_t row_group, size_t column) const
    {
        return static_cast<uint32_t>(
            row_group * fileMeta.schema.numColumns() + column);
    }

    /** Distinct node ids storing pieces of the given chunk (cached by
     *  buildLocationMap; O(1) per call). */
    const std::vector<size_t> &nodesForChunk(uint32_t chunk_id) const;

    /** This object's blocks on `node_id` (empty vector when none). */
    const std::vector<BlockRef> &blocksOnNode(size_t node_id) const;

    /** Storage key of a block on its node. */
    std::string blockKey(size_t stripe, size_t block_index) const;

    /**
     * Generation-qualified object name used in block keys and scheduler
     * share keys: the bare name for generation 0 (so pre-lifecycle key
     * formats are unchanged), "name@g<N>" afterwards.
     */
    std::string shareName() const;

    /** True when the re-stripe policy co-located this chunk. */
    bool isHotColocated(uint32_t chunk_id) const;

    /**
     * Derives chunkPieces, the per-chunk node cache and the per-node
     * block shards from the layout. Must be called after layout,
     * extents and stripeNodes are set.
     */
    void buildLocationMap();

  private:
    /** Distinct nodes per chunk id, derived by buildLocationMap. */
    std::vector<std::vector<size_t>> chunkNodes_;
};

} // namespace fusion::store

#endif // FUSION_STORE_MANIFEST_H
