#include "queries.h"

#include <algorithm>

#include "lineitem.h"
#include "taxi.h"

namespace fusion::workload {

using format::ColumnData;
using format::PhysicalType;
using format::Value;
using query::AggregateKind;
using query::CompareOp;
using query::Query;

Value
quantileLiteral(const ColumnData &column, double q)
{
    FUSION_CHECK(!column.empty());
    FUSION_CHECK(q >= 0.0 && q <= 1.0);
    size_t rank = static_cast<size_t>(q * (column.size() - 1));

    auto nth = [&](auto values) {
        std::nth_element(values.begin(), values.begin() + rank,
                         values.end());
        return values[rank];
    };
    switch (column.type()) {
      case PhysicalType::kInt32: return Value(nth(column.int32s()));
      case PhysicalType::kInt64: return Value(nth(column.int64s()));
      case PhysicalType::kDouble: return Value(nth(column.doubles()));
      case PhysicalType::kString: return Value(nth(column.strings()));
    }
    FUSION_CHECK(false);
    return Value();
}

Query
microbenchQuery(const std::string &table, const std::string &column,
                const ColumnData &data, double target_selectivity)
{
    Query q;
    q.table = table;
    q.projections.push_back({column, AggregateKind::kNone});
    // <= rather than <: on low-cardinality columns (flags, discounts)
    // a strict < against the low quantile would match zero rows; <=
    // yields the smallest achievable non-zero selectivity instead.
    q.filters.push_back(
        {column, CompareOp::kLe, quantileLiteral(data, target_selectivity)});
    return q;
}

Query
lineitemQ1(const std::string &table, const format::Table &lineitem)
{
    // TPC-H Q1 shape: summary columns for rows shipped before a cutoff.
    Query q;
    q.table = table;
    for (const char *col :
         {"l_quantity", "l_extendedprice", "l_discount", "l_tax",
          "l_returnflag", "l_linestatus"})
        q.projections.push_back({col, AggregateKind::kNone});
    q.filters.push_back(
        {"l_shipdate", CompareOp::kLt,
         quantileLiteral(lineitem.column(kShipDate), 0.014)});
    return q;
}

Query
lineitemQ2(const std::string &table, const format::Table &lineitem)
{
    // TPC-H Q6 shape (forecasting revenue change): narrow date band,
    // discount band, small quantities.
    Query q;
    q.table = table;
    q.projections.push_back({"l_extendedprice", AggregateKind::kNone});
    q.projections.push_back({"l_discount", AggregateKind::kNone});
    // Date cut (top ~22% of the span) times the discount (~6/11) and
    // quantity (23/50) cuts lands near the paper's 5.4%.
    q.filters.push_back(
        {"l_shipdate", CompareOp::kGe,
         quantileLiteral(lineitem.column(kShipDate), 0.78)});
    q.filters.push_back({"l_discount", CompareOp::kGe, Value(0.05)});
    q.filters.push_back({"l_quantity", CompareOp::kLt, Value(int64_t{24})});
    return q;
}

Query
taxiQ3(const std::string &table, const format::Table &taxi)
{
    // "How many rides took place every day in 2015?" -- scans rides
    // with date below the 2015 year boundary (37.5% of 2015-2017).
    Query q;
    q.table = table;
    q.projections.push_back({"", AggregateKind::kCount}); // COUNT(*)
    // Filter on the raw timestamp: like the paper's date column it has
    // low compressibility (~1.6), so even at 37.5% selectivity the
    // Cost Equation keeps pushdown on.
    q.filters.push_back(
        {"pickup_time", CompareOp::kLt,
         quantileLiteral(taxi.column(kPickupTime), 0.375)});
    return q;
}

Query
taxiQ4(const std::string &table, const format::Table &taxi)
{
    // "What is the average fare in January 2015?"
    Query q;
    q.table = table;
    q.projections.push_back({"pickup_date", AggregateKind::kNone});
    q.projections.push_back({"fare_amount", AggregateKind::kAvg});
    q.filters.push_back(
        {"pickup_time", CompareOp::kLt,
         quantileLiteral(taxi.column(kPickupTime), 0.063)});
    return q;
}

} // namespace fusion::workload
