/**
 * @file
 * google-benchmark microbenchmarks for the columnar format: chunk
 * encode/decode across encodings, full file write/read, and footer
 * parsing — the data-plane costs behind the stores' CPU model.
 */
#include <benchmark/benchmark.h>

#include "common/random.h"
#include "format/chunk_codec.h"
#include "format/reader.h"
#include "format/writer.h"
#include "workload/lineitem.h"

using namespace fusion;

namespace {

format::ColumnData
lowCardinalityColumn(size_t n)
{
    Rng rng(1);
    format::ColumnData col(format::PhysicalType::kInt64);
    for (size_t i = 0; i < n; ++i)
        col.append(rng.uniformInt(0, 15));
    return col;
}

format::ColumnData
highCardinalityColumn(size_t n)
{
    Rng rng(2);
    format::ColumnData col(format::PhysicalType::kDouble);
    for (size_t i = 0; i < n; ++i)
        col.append(rng.uniform());
    return col;
}

void
BM_EncodeChunkDictionary(benchmark::State &state)
{
    auto col = lowCardinalityColumn(100000);
    for (auto _ : state) {
        auto encoded = format::encodeChunk(col, {});
        benchmark::DoNotOptimize(encoded);
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            100000);
}
BENCHMARK(BM_EncodeChunkDictionary);

void
BM_EncodeChunkPlain(benchmark::State &state)
{
    auto col = highCardinalityColumn(100000);
    for (auto _ : state) {
        auto encoded = format::encodeChunk(col, {});
        benchmark::DoNotOptimize(encoded);
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            100000);
}
BENCHMARK(BM_EncodeChunkPlain);

void
BM_DecodeChunkDictionary(benchmark::State &state)
{
    auto col = lowCardinalityColumn(100000);
    auto encoded = format::encodeChunk(col, {});
    for (auto _ : state) {
        auto decoded = format::decodeChunk(Slice(encoded.bytes),
                                           format::PhysicalType::kInt64);
        benchmark::DoNotOptimize(decoded);
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            100000);
}
BENCHMARK(BM_DecodeChunkDictionary);

void
BM_WriteLineitemFile(benchmark::State &state)
{
    auto table = workload::makeLineitemTable(20000, 3);
    for (auto _ : state) {
        format::WriterOptions options;
        options.rowGroupRows = 2000;
        auto file = format::writeTable(table, options);
        benchmark::DoNotOptimize(file);
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            20000);
}
BENCHMARK(BM_WriteLineitemFile);

void
BM_OpenAndReadFile(benchmark::State &state)
{
    auto file = workload::buildLineitemFile(20000, 3);
    FUSION_CHECK(file.isOk());
    for (auto _ : state) {
        auto reader = format::FileReader::open(Slice(file.value().bytes));
        auto table = reader.value().readTable();
        benchmark::DoNotOptimize(table);
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            20000);
}
BENCHMARK(BM_OpenAndReadFile);

void
BM_ParseFooter(benchmark::State &state)
{
    auto file = workload::buildLineitemFile(20000, 3);
    FUSION_CHECK(file.isOk());
    Bytes footer = file.value().metadata.serialize();
    for (auto _ : state) {
        auto meta = format::FileMetadata::deserialize(Slice(footer));
        benchmark::DoNotOptimize(meta);
    }
}
BENCHMARK(BM_ParseFooter);

} // namespace

BENCHMARK_MAIN();
