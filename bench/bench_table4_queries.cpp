/**
 * @file
 * Reproduces paper Table 4 (real-world SQL query description): filter
 * and projection counts plus the measured selectivity of Q1-Q4 on the
 * generated datasets, next to the paper's reported selectivities.
 */
#include "benchutil/harness.h"
#include "query/eval.h"
#include "workload/lineitem.h"
#include "workload/queries.h"
#include "workload/taxi.h"

using namespace fusion;

namespace {

double
measuredSelectivity(const format::Table &t, const query::Query &q)
{
    uint64_t matched = 0;
    for (size_t i = 0; i < t.numRows(); ++i) {
        bool all = true;
        for (const auto &pred : q.filters) {
            size_t col = t.schema().columnIndex(pred.column).value();
            all &= query::compareValues(t.column(col).valueAt(i), pred.op,
                                        pred.literal);
        }
        matched += all ? 1 : 0;
    }
    return static_cast<double>(matched) / t.numRows();
}

} // namespace

int
main(int argc, char **argv)
{
    benchutil::obsInit(argc, argv);
    benchutil::banner("Table 4", "Real-world SQL query description");

    const size_t rows = 60000;
    format::Table lineitem = workload::makeLineitemTable(rows, 42);
    format::Table taxi = workload::makeTaxiTable(rows, 42);

    struct Row {
        const char *name;
        const char *dataset;
        query::Query query;
        const format::Table *table;
        double paperSelectivity;
    };
    Row queries[] = {
        {"Q1 (projection heavy)", "tpc-h",
         workload::lineitemQ1("lineitem", lineitem), &lineitem, 0.014},
        {"Q2 (filter heavy)", "tpc-h",
         workload::lineitemQ2("lineitem", lineitem), &lineitem, 0.054},
        {"Q3 (high selectivity)", "taxi", workload::taxiQ3("taxi", taxi),
         &taxi, 0.375},
        {"Q4 (low selectivity)", "taxi", workload::taxiQ4("taxi", taxi),
         &taxi, 0.063},
    };

    benchutil::TablePrinter table({"query", "dataset", "num filters",
                                   "num projections", "selectivity",
                                   "paper"});
    for (const auto &row : queries) {
        table.addRow(
            {row.name, row.dataset, std::to_string(row.query.filters.size()),
             std::to_string(row.query.projections.size()),
             benchutil::fmt("%.1f%%",
                            measuredSelectivity(*row.table, row.query) *
                                100.0),
             benchutil::fmt("%.1f%%", row.paperSelectivity * 100.0)});
    }
    table.print();
    std::printf("\nSQL:\n");
    for (const auto &row : queries)
        std::printf("  %-22s %s\n", row.name, row.query.toString().c_str());
    return 0;
}
