/**
 * @file
 * Tests for src/workload: generator schemas and distributions, encoded
 * file shapes (Table 3), compression-ratio structure (Fig 6), chunk
 * models, and query-suite selectivity calibration (Table 4).
 */
#include <gtest/gtest.h>

#include "format/reader.h"
#include "query/eval.h"
#include "workload/chunk_models.h"
#include "workload/lineitem.h"
#include "workload/queries.h"
#include "workload/taxi.h"
#include "workload/textsets.h"

namespace fusion::workload {
namespace {

TEST(LineitemTest, SchemaShape)
{
    format::Schema schema = lineitemSchema();
    EXPECT_EQ(schema.numColumns(), 16u);
    EXPECT_EQ(schema.column(kComment).name, "l_comment");
    EXPECT_EQ(schema.column(kShipDate).physical,
              format::PhysicalType::kInt32);
}

TEST(LineitemTest, Deterministic)
{
    format::Table a = makeLineitemTable(500, 3);
    format::Table b = makeLineitemTable(500, 3);
    for (size_t c = 0; c < a.numColumns(); ++c)
        EXPECT_TRUE(a.column(c) == b.column(c));
    format::Table c = makeLineitemTable(500, 4);
    EXPECT_FALSE(a.column(kComment) == c.column(kComment));
}

TEST(LineitemTest, ValueDomains)
{
    format::Table t = makeLineitemTable(2000, 5);
    ASSERT_TRUE(t.validate().isOk());
    for (int32_t q : t.column(kQuantity).int32s()) {
        EXPECT_GE(q, 1);
        EXPECT_LE(q, 50);
    }
    for (double d : t.column(kDiscount).doubles()) {
        EXPECT_GE(d, 0.0);
        EXPECT_LE(d, 0.10 + 1e-9);
    }
    // Order keys are non-decreasing with 1-7 lines per order.
    const auto &keys = t.column(kOrderKey).int64s();
    for (size_t i = 1; i < keys.size(); ++i)
        EXPECT_GE(keys[i], keys[i - 1]);
    for (const auto &s : t.column(kReturnFlag).strings())
        EXPECT_TRUE(s == "A" || s == "N" || s == "R");
    for (const auto &s : t.column(kComment).strings()) {
        EXPECT_GE(s.size(), 10u);
        EXPECT_LE(s.size(), 43u);
    }
}

TEST(LineitemTest, FileHasTenRowGroups)
{
    auto file = buildLineitemFile(3000, 1);
    ASSERT_TRUE(file.isOk());
    EXPECT_EQ(file.value().metadata.numRowGroups(), 10u);
    EXPECT_EQ(file.value().metadata.numChunks(), 160u);
}

TEST(LineitemTest, CompressionRatioShapeMatchesPaper)
{
    // Paper Fig 6: median ~9.3, max ~63.5; flags/dates highly
    // compressible, comment the least; prices modest.
    auto file = buildLineitemFile(20000, 2);
    ASSERT_TRUE(file.isOk());
    const auto &meta = file.value().metadata;

    auto ratio = [&](size_t col) {
        double total_plain = 0, total_stored = 0;
        for (size_t rg = 0; rg < meta.numRowGroups(); ++rg) {
            total_plain += meta.chunk(rg, col).plainSize;
            total_stored += meta.chunk(rg, col).storedSize;
        }
        return total_plain / total_stored;
    };

    EXPECT_GT(ratio(kReturnFlag), 15.0);
    EXPECT_GT(ratio(kLineStatus), 15.0);
    EXPECT_GT(ratio(kDiscount), 5.0);
    EXPECT_LT(ratio(kComment), 3.0);
    EXPECT_LT(ratio(kExtendedPrice), 3.0);
    EXPECT_GT(ratio(kReturnFlag), ratio(kComment));
}

TEST(LineitemTest, ChunkSizeShapeMatchesPaper)
{
    // Comment chunks dominate; flag chunks are tiny (Fig 12 shape).
    auto file = buildLineitemFile(20000, 2);
    ASSERT_TRUE(file.isOk());
    const auto &meta = file.value().metadata;
    auto stored = [&](size_t col) {
        uint64_t total = 0;
        for (size_t rg = 0; rg < meta.numRowGroups(); ++rg)
            total += meta.chunk(rg, col).storedSize;
        return total;
    };
    uint64_t comment = stored(kComment);
    EXPECT_GT(comment, stored(kOrderKey));
    EXPECT_GT(comment, stored(kExtendedPrice));
    EXPECT_GT(stored(kExtendedPrice), stored(kReturnFlag) * 10);
    EXPECT_GT(stored(kPartKey), stored(kLineNumber));
}

TEST(TaxiTest, SchemaAndRowGroups)
{
    EXPECT_EQ(taxiSchema().numColumns(), 20u);
    auto file = buildTaxiFile(3200, 1);
    ASSERT_TRUE(file.isOk());
    EXPECT_EQ(file.value().metadata.numRowGroups(), 16u);
    EXPECT_EQ(file.value().metadata.numChunks(), 320u);
}

TEST(TaxiTest, FareIsHighlyCompressibleDateIsNot)
{
    auto file = buildTaxiFile(20000, 3);
    ASSERT_TRUE(file.isOk());
    const auto &meta = file.value().metadata;
    auto ratio = [&](size_t col) {
        double plain = 0, stored = 0;
        for (size_t rg = 0; rg < meta.numRowGroups(); ++rg) {
            plain += meta.chunk(rg, col).plainSize;
            stored += meta.chunk(rg, col).storedSize;
        }
        return plain / stored;
    };
    // Paper: fare compression ~152, the Q3/Q4 filter (timestamp) ~1.6.
    // Shape requirement: fare >> timestamp.
    EXPECT_GT(ratio(kFareAmount), 12.0);
    EXPECT_LT(ratio(kPickupTime), 3.0);
    EXPECT_GT(ratio(kFareAmount), 4 * ratio(kPickupTime));
    EXPECT_GT(ratio(kMtaTax), 100.0); // constant column
}

TEST(TaxiTest, TripInvariants)
{
    format::Table t = makeTaxiTable(2000, 5);
    ASSERT_TRUE(t.validate().isOk());
    const auto &pickup = t.column(kPickupTime).int64s();
    const auto &dropoff = t.column(kDropoffTime).int64s();
    for (size_t i = 0; i < pickup.size(); ++i)
        EXPECT_GT(dropoff[i], pickup[i]);
    for (double f : t.column(kFareAmount).doubles()) {
        EXPECT_GE(f, 2.5);
        EXPECT_LE(f, 52.0);
    }
    // Dates are approximately sorted (time order with a little jitter).
    const auto &days = t.column(kPickupDate).int32s();
    for (size_t i = 1; i < days.size(); ++i)
        EXPECT_GE(days[i], days[i - 1] - 9);
}

TEST(TextsetsTest, RecipeShape)
{
    EXPECT_EQ(recipeSchema().numColumns(), 7u);
    auto file = buildRecipeFile(1200, 1);
    ASSERT_TRUE(file.isOk());
    EXPECT_EQ(file.value().metadata.numChunks(), 84u);
    // directions is the big text column.
    const auto &meta = file.value().metadata;
    uint64_t directions = 0, id = 0;
    for (size_t rg = 0; rg < meta.numRowGroups(); ++rg) {
        directions += meta.chunk(rg, 3).storedSize;
        id += meta.chunk(rg, 0).storedSize;
    }
    EXPECT_GT(directions, id * 3);
}

TEST(TextsetsTest, UkppShape)
{
    EXPECT_EQ(ukppSchema().numColumns(), 16u);
    auto file = buildUkppFile(1500, 1);
    ASSERT_TRUE(file.isOk());
    EXPECT_EQ(file.value().metadata.numChunks(), 240u);
}

TEST(ChunkModelTest, LineitemModelMatchesPaperScale)
{
    auto chunks = lineitemChunkModel(1);
    EXPECT_EQ(chunks.size(), 160u);
    uint64_t total = modelTotalBytes(chunks);
    // ~10 GB +- jitter.
    EXPECT_GT(total, 9'500'000'000ULL);
    EXPECT_LT(total, 11'500'000'000ULL);
    // Extents are contiguous from offset 0.
    uint64_t cursor = 0;
    for (const auto &chunk : chunks) {
        EXPECT_EQ(chunk.offset, cursor);
        cursor += chunk.size;
    }
}

TEST(ChunkModelTest, OtherModelsMatchTable3)
{
    EXPECT_EQ(taxiChunkModel(1).size(), 320u);
    EXPECT_NEAR(modelTotalBytes(taxiChunkModel(1)) / 1e9, 6.9, 1.5);
    EXPECT_EQ(recipeChunkModel(1).size(), 84u);
    EXPECT_NEAR(modelTotalBytes(recipeChunkModel(1)) / 1e9, 0.98, 0.25);
    EXPECT_EQ(ukppChunkModel(1).size(), 240u);
    EXPECT_NEAR(modelTotalBytes(ukppChunkModel(1)) / 1e9, 1.35, 0.35);
}

TEST(ChunkModelTest, ZipfModelBoundsAndSkew)
{
    auto uniform = zipfChunkModel(1000, 0.0, 7);
    auto skewed = zipfChunkModel(1000, 0.99, 7);
    for (const auto &chunks : {uniform, skewed}) {
        for (const auto &chunk : chunks) {
            EXPECT_GE(chunk.size, 1'000'000u);
            EXPECT_LE(chunk.size, 100'000'000u);
        }
    }
    // Skewed model has a much smaller mean (mass on rank 1 = 1 MB).
    EXPECT_LT(modelTotalBytes(skewed), modelTotalBytes(uniform) / 2);
}

TEST(QuerySuiteTest, QuantileLiteral)
{
    format::ColumnData col(format::PhysicalType::kInt64);
    for (int64_t i = 0; i < 100; ++i)
        col.append(i);
    EXPECT_TRUE(quantileLiteral(col, 0.0) == format::Value::ofInt64(0));
    EXPECT_TRUE(quantileLiteral(col, 0.5) ==
                format::Value::ofInt64(49));
    EXPECT_TRUE(quantileLiteral(col, 1.0) ==
                format::Value::ofInt64(99));
}

TEST(QuerySuiteTest, MicrobenchSelectivityCalibrated)
{
    format::Table t = makeLineitemTable(20000, 13);
    auto q = microbenchQuery("lineitem", "l_extendedprice",
                             t.column(kExtendedPrice), 0.01);
    ASSERT_EQ(q.filters.size(), 1u);
    // Count matching rows directly.
    uint64_t matched = 0;
    for (double v : t.column(kExtendedPrice).doubles())
        matched += (v < q.filters[0].literal.numeric()) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(matched) / t.numRows(), 0.01, 0.003);
}

TEST(QuerySuiteTest, Table4Selectivities)
{
    const size_t rows = 30000;
    format::Table lineitem = makeLineitemTable(rows, 17);
    format::Table taxi = makeTaxiTable(rows, 17);

    auto count_matches = [&](const format::Table &t,
                             const query::Query &q) {
        uint64_t matched = 0;
        for (size_t i = 0; i < t.numRows(); ++i) {
            bool all = true;
            for (const auto &pred : q.filters) {
                size_t col =
                    t.schema().columnIndex(pred.column).value();
                all &= query::compareValues(t.column(col).valueAt(i),
                                            pred.op, pred.literal);
            }
            matched += all ? 1 : 0;
        }
        return static_cast<double>(matched) / t.numRows();
    };

    // Paper Table 4: Q1 1.4%, Q2 5.4%, Q3 37.5%, Q4 6.3%.
    EXPECT_NEAR(count_matches(lineitem, lineitemQ1("l", lineitem)), 0.014,
                0.006);
    EXPECT_NEAR(count_matches(lineitem, lineitemQ2("l", lineitem)), 0.054,
                0.025);
    EXPECT_NEAR(count_matches(taxi, taxiQ3("t", taxi)), 0.375, 0.02);
    EXPECT_NEAR(count_matches(taxi, taxiQ4("t", taxi)), 0.063, 0.01);

    // Table 4 shapes: filters and projections per query.
    EXPECT_EQ(lineitemQ1("l", lineitem).filters.size(), 1u);
    EXPECT_EQ(lineitemQ1("l", lineitem).projections.size(), 6u);
    EXPECT_EQ(lineitemQ2("l", lineitem).filters.size(), 3u);
    EXPECT_EQ(lineitemQ2("l", lineitem).projections.size(), 2u);
    EXPECT_EQ(taxiQ3("t", taxi).filters.size(), 1u);
    EXPECT_EQ(taxiQ4("t", taxi).projections.size(), 2u);
}

} // namespace
} // namespace fusion::workload
