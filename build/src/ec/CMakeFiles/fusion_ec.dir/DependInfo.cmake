
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ec/gf256.cc" "src/ec/CMakeFiles/fusion_ec.dir/gf256.cc.o" "gcc" "src/ec/CMakeFiles/fusion_ec.dir/gf256.cc.o.d"
  "/root/repo/src/ec/lrc.cc" "src/ec/CMakeFiles/fusion_ec.dir/lrc.cc.o" "gcc" "src/ec/CMakeFiles/fusion_ec.dir/lrc.cc.o.d"
  "/root/repo/src/ec/matrix.cc" "src/ec/CMakeFiles/fusion_ec.dir/matrix.cc.o" "gcc" "src/ec/CMakeFiles/fusion_ec.dir/matrix.cc.o.d"
  "/root/repo/src/ec/reed_solomon.cc" "src/ec/CMakeFiles/fusion_ec.dir/reed_solomon.cc.o" "gcc" "src/ec/CMakeFiles/fusion_ec.dir/reed_solomon.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/fusion_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
