/**
 * @file
 * Size/time unit constants and human-readable formatting helpers.
 */
#ifndef FUSION_COMMON_UNITS_H
#define FUSION_COMMON_UNITS_H

#include <cstdint>
#include <string>

namespace fusion {

inline constexpr uint64_t kKiB = 1024ULL;
inline constexpr uint64_t kMiB = 1024ULL * kKiB;
inline constexpr uint64_t kGiB = 1024ULL * kMiB;

/** "1.50 GiB", "37.2 MiB", "812 B". */
std::string formatBytes(uint64_t bytes);

/** Seconds rendered with an adaptive unit: "1.20 s", "35.0 ms", "210 us". */
std::string formatSeconds(double seconds);

/** Fixed-precision percentage, e.g. "12.3%". */
std::string formatPercent(double fraction, int decimals = 1);

} // namespace fusion

#endif // FUSION_COMMON_UNITS_H
