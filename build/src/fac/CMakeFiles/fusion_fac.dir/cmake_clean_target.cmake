file(REMOVE_RECURSE
  "libfusion_fac.a"
)
