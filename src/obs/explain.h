/**
 * @file
 * Query EXPLAIN report for the adaptive-pushdown executor. Every
 * per-chunk projection decision the Cost Equation makes (paper §4.3:
 * push when selectivity x compressibility < 1) is recorded with its
 * inputs and verdict, including the decisions the equation never got
 * to make — health fallbacks on faulted nodes, split chunks that must
 * reassemble, and aggregate pushdowns. Rendered as a deterministic
 * text table or canonical JSON so reports are byte-comparable across
 * runs and thread counts.
 */
#ifndef FUSION_OBS_EXPLAIN_H
#define FUSION_OBS_EXPLAIN_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace fusion::obs {

/** One projection chunk's pushdown decision. */
struct ExplainChunk {
    uint32_t chunkId = 0;
    uint32_t rowGroup = 0;
    std::string column;
    double selectivity = 0.0;
    double compressibility = 1.0;
    /** "push" or "fetch" — where the projection actually ran. */
    std::string verdict;
    /** Why: "cost product < 1", "cost product >= 1", "node
     *  unresponsive (health fallback)", "chunk split across nodes",
     *  "aggregate-only projection", "adaptive pushdown disabled". */
    std::string reason;

    /** The Cost Equation's left-hand side. */
    double product() const { return selectivity * compressibility; }
};

/** Full report for one query against one object. */
struct QueryExplain {
    std::string table;
    std::string query; // canonical query text
    double selectivity = 0.0;
    size_t rowGroupsScanned = 0;
    size_t rowGroupsSkipped = 0;
    size_t filterPushdowns = 0;
    size_t filterFetches = 0;
    std::vector<ExplainChunk> projections;

    size_t pushCount() const;
    size_t fetchCount() const;

    /** Aligned text table (the `EXPLAIN` output). */
    std::string render() const;
    /** Canonical JSON with fixed formatting. */
    std::string toJson() const;
};

} // namespace fusion::obs

#endif // FUSION_OBS_EXPLAIN_H
