file(REMOVE_RECURSE
  "CMakeFiles/fusion_query.dir/ast.cc.o"
  "CMakeFiles/fusion_query.dir/ast.cc.o.d"
  "CMakeFiles/fusion_query.dir/bitmap.cc.o"
  "CMakeFiles/fusion_query.dir/bitmap.cc.o.d"
  "CMakeFiles/fusion_query.dir/eval.cc.o"
  "CMakeFiles/fusion_query.dir/eval.cc.o.d"
  "CMakeFiles/fusion_query.dir/parser.cc.o"
  "CMakeFiles/fusion_query.dir/parser.cc.o.d"
  "libfusion_query.a"
  "libfusion_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fusion_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
