/**
 * @file
 * Integration tests for src/store: Put/Get round trips on both stores,
 * fault tolerance (degraded reads, repair), query correctness (results
 * identical across stores and equal to a direct table evaluation),
 * the adaptive pushdown policy, and the latency/traffic relationships
 * the paper's evaluation depends on.
 */
#include <gtest/gtest.h>

#include <memory>

#include "common/random.h"
#include "store/baseline_store.h"
#include "store/fusion_store.h"
#include "workload/lineitem.h"
#include "workload/queries.h"
#include "workload/taxi.h"

namespace fusion::store {
namespace {

using query::AggregateKind;
using query::CompareOp;

struct TestRig {
    std::unique_ptr<sim::Cluster> cluster;
    std::unique_ptr<ObjectStore> store;
};

TestRig
makeRig(bool fusion, StoreOptions options = {}, size_t nodes = 9)
{
    TestRig rig;
    sim::ClusterConfig config;
    config.numNodes = nodes;
    rig.cluster = std::make_unique<sim::Cluster>(config);
    if (fusion)
        rig.store =
            std::make_unique<FusionStore>(*rig.cluster, options);
    else
        rig.store =
            std::make_unique<BaselineStore>(*rig.cluster, options);
    return rig;
}

Bytes
lineitemBytes(size_t rows = 4000, uint64_t seed = 7)
{
    static std::map<std::pair<size_t, uint64_t>, Bytes> cache;
    auto key = std::make_pair(rows, seed);
    auto it = cache.find(key);
    if (it == cache.end()) {
        auto file = workload::buildLineitemFile(rows, seed);
        FUSION_CHECK(file.isOk());
        it = cache.emplace(key, file.value().bytes).first;
    }
    return it->second;
}

TEST(PutGetTest, RoundTripBothStores)
{
    Bytes object = lineitemBytes();
    for (bool fusion : {false, true}) {
        TestRig rig = makeRig(fusion);
        auto put = rig.store->put("lineitem", object);
        ASSERT_TRUE(put.isOk()) << put.status().toString();
        EXPECT_EQ(put.value().objectBytes, object.size());
        EXPECT_EQ(put.value().numChunks, 160u);
        auto back = rig.store->get("lineitem");
        ASSERT_TRUE(back.isOk());
        EXPECT_EQ(back.value(), object) << "fusion=" << fusion;
    }
}

TEST(PutGetTest, RangeReads)
{
    Bytes object = lineitemBytes();
    TestRig rig = makeRig(true);
    ASSERT_TRUE(rig.store->put("lineitem", object).isOk());
    Rng rng(5);
    for (int trial = 0; trial < 20; ++trial) {
        uint64_t offset = rng.uniformInt(0, object.size() - 2);
        uint64_t size =
            rng.uniformInt(1, std::min<uint64_t>(object.size() - offset,
                                                 100000));
        auto range = rig.store->get("lineitem", offset, size);
        ASSERT_TRUE(range.isOk());
        EXPECT_TRUE(Slice(range.value()) ==
                    Slice(object).subslice(offset, size));
    }
    EXPECT_FALSE(
        rig.store->get("lineitem", object.size() - 10, 20).isOk());
}

TEST(PutGetTest, OpaqueObjectsSupported)
{
    TestRig rig = makeRig(true);
    Rng rng(3);
    Bytes blob(3 << 20);
    for (auto &b : blob)
        b = static_cast<uint8_t>(rng.next());
    auto put = rig.store->put("blob", blob);
    ASSERT_TRUE(put.isOk());
    // Opaque objects fall back to fixed blocks (one giant "chunk").
    EXPECT_EQ(put.value().layoutKind, fac::LayoutKind::kFixed);
    auto back = rig.store->get("blob");
    ASSERT_TRUE(back.isOk());
    EXPECT_EQ(back.value(), blob);
    // ...and cannot be queried.
    EXPECT_FALSE(rig.store->querySql("SELECT a FROM blob").isOk());
}

TEST(PutGetTest, FusionLayoutKeepsChunksIntact)
{
    TestRig rig = makeRig(true);
    auto put = rig.store->put("lineitem", lineitemBytes());
    ASSERT_TRUE(put.isOk());
    EXPECT_EQ(put.value().layoutKind, fac::LayoutKind::kFac);
    EXPECT_DOUBLE_EQ(put.value().splitFraction, 0.0);
    EXPECT_LE(put.value().overheadVsOptimal, 0.02);

    const ObjectManifest &m = *rig.store->manifest("lineitem").value();
    for (uint32_t c = 0; c < m.numDataChunks(); ++c)
        EXPECT_EQ(m.nodesForChunk(c).size(), 1u) << "chunk " << c;
}

TEST(PutGetTest, BaselineSplitsChunks)
{
    StoreOptions options;
    // Block size comparable to the larger chunks of this scaled-down
    // file, mirroring the paper's 100 MB blocks on GB files.
    options.fixedBlockSize = 4 << 10;
    TestRig rig = makeRig(false, options);
    auto put = rig.store->put("lineitem", lineitemBytes());
    ASSERT_TRUE(put.isOk());
    EXPECT_EQ(put.value().layoutKind, fac::LayoutKind::kFixed);
    EXPECT_GT(put.value().splitFraction, 0.15);
}

TEST(PutGetTest, OverwriteReplacesObject)
{
    TestRig rig = makeRig(true);
    Bytes v1 = lineitemBytes(2000, 1);
    Bytes v2 = lineitemBytes(2500, 2);
    ASSERT_TRUE(rig.store->put("obj", v1).isOk());
    ASSERT_TRUE(rig.store->put("obj", v2).isOk());
    auto back = rig.store->get("obj");
    ASSERT_TRUE(back.isOk());
    EXPECT_EQ(back.value(), v2);
}

TEST(PutGetTest, StoredBytesMatchNodeAccounting)
{
    TestRig rig = makeRig(true);
    auto put = rig.store->put("lineitem", lineitemBytes());
    ASSERT_TRUE(put.isOk());
    uint64_t on_nodes = 0;
    for (size_t i = 0; i < rig.cluster->numNodes(); ++i)
        on_nodes += rig.cluster->node(i).storedBytes();
    EXPECT_EQ(on_nodes, put.value().storedBytes);
}

TEST(FaultToleranceTest, DegradedReadsUpToNMinusK)
{
    Bytes object = lineitemBytes();
    TestRig rig = makeRig(true);
    ASSERT_TRUE(rig.store->put("lineitem", object).isOk());

    // RS(9,6) tolerates 3 failures.
    rig.cluster->killNode(0);
    rig.cluster->killNode(3);
    rig.cluster->killNode(7);
    auto back = rig.store->get("lineitem");
    ASSERT_TRUE(back.isOk()) << back.status().toString();
    EXPECT_EQ(back.value(), object);

    rig.cluster->killNode(8); // fourth failure: unrecoverable
    EXPECT_FALSE(rig.store->get("lineitem").isOk());
}

TEST(FaultToleranceTest, QueriesSurviveFailures)
{
    Bytes object = lineitemBytes();
    TestRig rig = makeRig(true);
    ASSERT_TRUE(rig.store->put("lineitem", object).isOk());

    auto healthy = rig.store->querySql(
        "SELECT l_orderkey FROM lineitem WHERE l_quantity < 5");
    ASSERT_TRUE(healthy.isOk());

    rig.cluster->killNode(2);
    rig.cluster->killNode(5);
    auto degraded = rig.store->querySql(
        "SELECT l_orderkey FROM lineitem WHERE l_quantity < 5");
    ASSERT_TRUE(degraded.isOk()) << degraded.status().toString();
    EXPECT_EQ(degraded.value().result.rowsMatched,
              healthy.value().result.rowsMatched);
}

TEST(FaultToleranceTest, RepairRestoresBlocks)
{
    Bytes object = lineitemBytes();
    TestRig rig = makeRig(true);
    ASSERT_TRUE(rig.store->put("lineitem", object).isOk());

    size_t victim = 4;
    uint64_t before = rig.cluster->node(victim).storedBytes();
    rig.cluster->killNode(victim);
    rig.cluster->node(victim).wipe(); // media loss
    rig.cluster->reviveNode(victim);

    auto rebuilt = rig.store->repairNode(victim);
    ASSERT_TRUE(rebuilt.isOk()) << rebuilt.status().toString();
    EXPECT_GT(rebuilt.value(), 0u);
    EXPECT_EQ(rig.cluster->node(victim).storedBytes(), before);

    auto back = rig.store->get("lineitem");
    ASSERT_TRUE(back.isOk());
    EXPECT_EQ(back.value(), object);
    // Repair is idempotent.
    EXPECT_EQ(rig.store->repairNode(victim).value(), 0u);
}

// Reference evaluation against the raw table for correctness oracle.
uint64_t
referenceCount(const format::Table &t, size_t col, double literal)
{
    uint64_t count = 0;
    for (size_t i = 0; i < t.numRows(); ++i)
        if (t.column(col).valueAt(i).numeric() < literal)
            ++count;
    return count;
}

TEST(QueryCorrectnessTest, MatchesReferenceEvaluation)
{
    const size_t rows = 4000;
    format::Table table = workload::makeLineitemTable(rows, 7);
    Bytes object = lineitemBytes(rows, 7);

    TestRig rig = makeRig(true);
    ASSERT_TRUE(rig.store->put("lineitem", object).isOk());

    auto outcome = rig.store->querySql(
        "SELECT l_extendedprice FROM lineitem WHERE l_quantity < 10");
    ASSERT_TRUE(outcome.isOk());
    uint64_t expect =
        referenceCount(table, workload::kQuantity, 10.0);
    EXPECT_EQ(outcome.value().result.rowsMatched, expect);
    ASSERT_EQ(outcome.value().result.columns.size(), 1u);
    EXPECT_EQ(outcome.value().result.columns[0].values.size(), expect);
}

TEST(QueryCorrectnessTest, BaselineAndFusionAgree)
{
    Bytes object = lineitemBytes();
    TestRig baseline = makeRig(false);
    TestRig fusion = makeRig(true);
    ASSERT_TRUE(baseline.store->put("lineitem", object).isOk());
    ASSERT_TRUE(fusion.store->put("lineitem", object).isOk());

    const char *queries[] = {
        "SELECT l_orderkey FROM lineitem WHERE l_quantity < 3",
        "SELECT l_comment FROM lineitem WHERE l_returnflag = 'R'",
        "SELECT COUNT(*) FROM lineitem WHERE l_discount >= 0.08",
        "SELECT SUM(l_extendedprice), AVG(l_discount) FROM lineitem "
        "WHERE l_shipdate < 600 AND l_quantity < 25",
        "SELECT l_shipmode FROM lineitem WHERE l_comment > 'q'",
    };
    for (const char *sql : queries) {
        auto a = baseline.store->querySql(sql);
        auto b = fusion.store->querySql(sql);
        ASSERT_TRUE(a.isOk()) << sql << ": " << a.status().toString();
        ASSERT_TRUE(b.isOk()) << sql << ": " << b.status().toString();
        EXPECT_EQ(a.value().result.rowsMatched,
                  b.value().result.rowsMatched)
            << sql;
        ASSERT_EQ(a.value().result.columns.size(),
                  b.value().result.columns.size());
        for (size_t c = 0; c < a.value().result.columns.size(); ++c) {
            const auto &ca = a.value().result.columns[c];
            const auto &cb = b.value().result.columns[c];
            EXPECT_EQ(ca.isAggregate, cb.isAggregate);
            if (ca.isAggregate)
                EXPECT_DOUBLE_EQ(ca.aggregateValue, cb.aggregateValue)
                    << sql;
            else
                EXPECT_TRUE(ca.values == cb.values) << sql;
        }
    }
}

TEST(QueryCorrectnessTest, SelectStarAndAggregates)
{
    Bytes object = lineitemBytes(2000, 9);
    TestRig rig = makeRig(true);
    ASSERT_TRUE(rig.store->put("lineitem", object).isOk());

    auto star =
        rig.store->querySql("SELECT * FROM lineitem WHERE l_orderkey < 50");
    ASSERT_TRUE(star.isOk());
    EXPECT_EQ(star.value().result.columns.size(), 16u);

    auto agg = rig.store->querySql(
        "SELECT COUNT(*), MIN(l_quantity), MAX(l_quantity) FROM lineitem");
    ASSERT_TRUE(agg.isOk());
    EXPECT_DOUBLE_EQ(agg.value().result.columns[1].aggregateValue, 1.0);
    EXPECT_DOUBLE_EQ(agg.value().result.columns[2].aggregateValue, 50.0);
    EXPECT_EQ(agg.value().result.rowsMatched, 2000u);
}

TEST(QueryCorrectnessTest, UnknownColumnsAndObjectsRejected)
{
    TestRig rig = makeRig(true);
    ASSERT_TRUE(rig.store->put("lineitem", lineitemBytes()).isOk());
    EXPECT_FALSE(rig.store->querySql("SELECT nope FROM lineitem").isOk());
    EXPECT_FALSE(
        rig.store
            ->querySql("SELECT l_orderkey FROM lineitem WHERE nope < 3")
            .isOk());
    EXPECT_EQ(
        rig.store->querySql("SELECT a FROM missing").status().code(),
        StatusCode::kNotFound);
}

TEST(QueryExecutionTest, ZoneMapsSkipRowGroups)
{
    // l_orderkey is monotonically increasing, so a narrow key range
    // touches only a prefix of row groups.
    TestRig rig = makeRig(true);
    ASSERT_TRUE(rig.store->put("lineitem", lineitemBytes()).isOk());
    auto outcome = rig.store->querySql(
        "SELECT l_orderkey FROM lineitem WHERE l_orderkey < 10");
    ASSERT_TRUE(outcome.isOk());
    EXPECT_GE(outcome.value().rowGroupsSkipped, 8u);
    EXPECT_LE(outcome.value().rowGroupsScanned, 2u);
}

TEST(QueryExecutionTest, SelectiveQueryPushesDown)
{
    TestRig rig = makeRig(true);
    ASSERT_TRUE(rig.store->put("lineitem", lineitemBytes()).isOk());
    // ~1% selectivity on a modestly compressible column: push down.
    auto outcome = rig.store->querySql(
        "SELECT l_comment FROM lineitem WHERE l_quantity < 2");
    ASSERT_TRUE(outcome.isOk());
    EXPECT_GT(outcome.value().projectionPushdowns, 0u);
    EXPECT_EQ(outcome.value().projectionFetches, 0u);
    EXPECT_GT(outcome.value().filterChunkPushdowns, 0u);
}

TEST(QueryExecutionTest, HighSelectivityDisablesProjectionPushdown)
{
    TestRig rig = makeRig(true);
    ASSERT_TRUE(rig.store->put("lineitem", lineitemBytes()).isOk());
    // 100% selectivity on a highly compressible column (returnflag has
    // 3 distinct values): selectivity x compressibility >> 1.
    auto outcome = rig.store->querySql(
        "SELECT l_returnflag FROM lineitem WHERE l_quantity <= 50");
    ASSERT_TRUE(outcome.isOk());
    EXPECT_EQ(outcome.value().projectionPushdowns, 0u);
    EXPECT_GT(outcome.value().projectionFetches, 0u);
    // Filters are still pushed down even when projections are not.
    EXPECT_GT(outcome.value().filterChunkPushdowns, 0u);
}

TEST(QueryExecutionTest, AdaptiveOffAlwaysPushes)
{
    StoreOptions options;
    options.adaptivePushdown = false;
    TestRig rig = makeRig(true, options);
    ASSERT_TRUE(rig.store->put("lineitem", lineitemBytes()).isOk());
    auto outcome = rig.store->querySql(
        "SELECT l_returnflag FROM lineitem WHERE l_quantity <= 50");
    ASSERT_TRUE(outcome.isOk());
    EXPECT_GT(outcome.value().projectionPushdowns, 0u);
    EXPECT_EQ(outcome.value().projectionFetches, 0u);
}

TEST(QueryExecutionTest, FusionBeatsBaselineOnSelectiveQuery)
{
    Bytes object = lineitemBytes();
    StoreOptions options;
    options.fixedBlockSize = 256 << 10; // force chunk splits in baseline
    // Scale service rates down so transfer time dominates fixed RPC
    // latency, as on the paper's GB-scale files (see benchutil rigs).
    sim::ClusterConfig cluster_config;
    cluster_config.node.diskBandwidth /= 1000;
    cluster_config.node.nicBandwidth /= 1000;
    cluster_config.node.cpuRate /= 1000;
    TestRig baseline, fusion;
    baseline.cluster = std::make_unique<sim::Cluster>(cluster_config);
    baseline.store = std::make_unique<BaselineStore>(*baseline.cluster,
                                                     options);
    fusion.cluster = std::make_unique<sim::Cluster>(cluster_config);
    fusion.store = std::make_unique<FusionStore>(*fusion.cluster, options);
    ASSERT_TRUE(baseline.store->put("lineitem", object).isOk());
    ASSERT_TRUE(fusion.store->put("lineitem", object).isOk());

    const char *sql =
        "SELECT l_comment FROM lineitem WHERE l_extendedprice < 2000";
    auto b = baseline.store->querySql(sql);
    auto f = fusion.store->querySql(sql);
    ASSERT_TRUE(b.isOk());
    ASSERT_TRUE(f.isOk());
    EXPECT_LT(f.value().latencySeconds, b.value().latencySeconds);
    EXPECT_LT(f.value().networkBytes, b.value().networkBytes);
}

TEST(QueryExecutionTest, AggregatePushdownShrinksReplies)
{
    Bytes object = lineitemBytes();
    StoreOptions plain;
    StoreOptions with_agg;
    with_agg.aggregatePushdown = true;
    TestRig rig_plain = makeRig(true, plain);
    TestRig rig_agg = makeRig(true, with_agg);
    ASSERT_TRUE(rig_plain.store->put("lineitem", object).isOk());
    ASSERT_TRUE(rig_agg.store->put("lineitem", object).isOk());

    const char *sql = "SELECT SUM(l_extendedprice) FROM lineitem "
                      "WHERE l_quantity < 30";
    auto a = rig_plain.store->querySql(sql);
    auto b = rig_agg.store->querySql(sql);
    ASSERT_TRUE(a.isOk());
    ASSERT_TRUE(b.isOk());
    EXPECT_DOUBLE_EQ(a.value().result.columns[0].aggregateValue,
                     b.value().result.columns[0].aggregateValue);
    EXPECT_LT(b.value().networkBytes, a.value().networkBytes);
    EXPECT_LT(b.value().latencySeconds, a.value().latencySeconds);
}

TEST(QueryExecutionTest, RepeatedQueriesAreDeterministic)
{
    TestRig rig = makeRig(true);
    ASSERT_TRUE(rig.store->put("lineitem", lineitemBytes()).isOk());
    const char *sql =
        "SELECT l_partkey FROM lineitem WHERE l_suppkey < 100";
    auto first = rig.store->querySql(sql);
    auto second = rig.store->querySql(sql);
    ASSERT_TRUE(first.isOk());
    ASSERT_TRUE(second.isOk());
    // Same plan on an idle cluster: identical latency and traffic
    // (up to floating-point noise from differing absolute sim times).
    EXPECT_NEAR(first.value().latencySeconds,
                second.value().latencySeconds,
                1e-9 * first.value().latencySeconds);
    EXPECT_EQ(first.value().networkBytes, second.value().networkBytes);
}

TEST(QueryExecutionTest, TaxiQuerySuiteSelectivities)
{
    const size_t rows = 8000;
    format::Table taxi = workload::makeTaxiTable(rows, 11);
    auto file = workload::buildTaxiFile(rows, 11);
    ASSERT_TRUE(file.isOk());

    TestRig rig = makeRig(true);
    ASSERT_TRUE(rig.store->put("taxi", file.value().bytes).isOk());

    auto q3 = rig.store->query(workload::taxiQ3("taxi", taxi));
    ASSERT_TRUE(q3.isOk());
    double sel3 = static_cast<double>(q3.value().result.rowsMatched) / rows;
    EXPECT_NEAR(sel3, 0.375, 0.02);

    auto q4 = rig.store->query(workload::taxiQ4("taxi", taxi));
    ASSERT_TRUE(q4.isOk());
    double sel4 = static_cast<double>(q4.value().result.rowsMatched) / rows;
    EXPECT_NEAR(sel4, 0.063, 0.01);
    // AVG(fare) is a sane dollar value.
    EXPECT_GT(q4.value().result.columns[1].aggregateValue, 2.5);
    EXPECT_LT(q4.value().result.columns[1].aggregateValue, 60.0);
}

} // namespace
} // namespace fusion::store
