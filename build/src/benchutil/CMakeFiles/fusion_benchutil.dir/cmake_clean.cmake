file(REMOVE_RECURSE
  "CMakeFiles/fusion_benchutil.dir/harness.cc.o"
  "CMakeFiles/fusion_benchutil.dir/harness.cc.o.d"
  "CMakeFiles/fusion_benchutil.dir/rigs.cc.o"
  "CMakeFiles/fusion_benchutil.dir/rigs.cc.o.d"
  "libfusion_benchutil.a"
  "libfusion_benchutil.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fusion_benchutil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
