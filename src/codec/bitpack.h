/**
 * @file
 * Fixed-width bit packing (LSB-first), as used by Parquet-style
 * dictionary indices and RLE literal groups.
 */
#ifndef FUSION_CODEC_BITPACK_H
#define FUSION_CODEC_BITPACK_H

#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"

namespace fusion::codec {

/** Number of bits required to represent `max_value` (0 for value 0). */
int bitWidthFor(uint64_t max_value);

/**
 * Appends values to a byte buffer at a fixed bit width, LSB-first.
 * Values must fit in `width` bits. flush() pads the final partial byte
 * with zero bits.
 */
class BitPacker
{
  public:
    BitPacker(Bytes &out, int width);

    void put(uint64_t value);
    /** Pads to a byte boundary; must be called once after the last put. */
    void flush();

    int width() const { return width_; }

  private:
    Bytes &out_;
    int width_;
    uint64_t pending_ = 0; // bits not yet written, LSB-aligned
    int pendingBits_ = 0;
};

/**
 * Reads fixed-width values written by BitPacker. Bounds-checked: reading
 * past the underlying slice returns kCorruption.
 */
class BitUnpacker
{
  public:
    BitUnpacker(Slice input, int width);

    Result<uint64_t> get();

    /** Bulk-read `count` values. */
    Status getMany(size_t count, std::vector<uint64_t> &out);

  private:
    Slice input_;
    int width_;
    size_t bytePos_ = 0;
    uint64_t pending_ = 0;
    int pendingBits_ = 0;
};

} // namespace fusion::codec

#endif // FUSION_CODEC_BITPACK_H
