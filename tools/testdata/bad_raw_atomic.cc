// Fixture: each line tagged `BAD: <rule>` must produce exactly that
// finding; untagged lines must produce none.
#include <atomic>

struct AdHocStats {
    std::atomic<unsigned long> hits{0};  // BAD: raw-atomic
    std::atomic_flag busy;               // BAD: raw-atomic
    std::atomic_int errors{0};           // BAD: raw-atomic

    void
    touch()
    {
        hits.fetch_add(1, std::memory_order_relaxed);
    }
};

// Unqualified identifiers are fine (could be a local type named
// `atomic`; the rule only fires on std::-qualified uses).
struct Wrapper {
    int atomic = 0;
    int atomic_flag = 0;
};
