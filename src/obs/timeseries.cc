#include "timeseries.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "metrics.h"

namespace fusion::obs {

namespace {

/** Minimal JSON string escape (quotes, backslashes, control bytes). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\') {
            out += '\\';
            out += c;
        } else if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x",
                          static_cast<unsigned>(c));
            out += buf;
        } else {
            out += c;
        }
    }
    return out;
}

/** Inclusive interpolated percentile over a sorted sample vector. */
double
sortedPercentile(const std::vector<double> &sorted, double p)
{
    if (sorted.empty())
        return 0.0;
    if (p < 0.0)
        p = 0.0;
    if (p > 100.0)
        p = 100.0;
    const double h =
        static_cast<double>(sorted.size() - 1) * p / 100.0;
    const size_t lo = static_cast<size_t>(h);
    const size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = h - static_cast<double>(lo);
    return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

} // namespace

// ---------------------------------------------------------------------
// WindowReducer
// ---------------------------------------------------------------------

WindowReducer::WindowReducer(double window_seconds)
    : window_(window_seconds)
{
}

void
WindowReducer::observe(double seconds, double value)
{
    advance(seconds);
    samples_.emplace_back(seconds, value);
}

void
WindowReducer::advance(double seconds)
{
    const double cutoff = seconds - window_;
    while (!samples_.empty() && samples_.front().first < cutoff)
        samples_.pop_front();
}

size_t
WindowReducer::count() const
{
    return samples_.size();
}

double
WindowReducer::rate() const
{
    if (window_ <= 0.0)
        return 0.0;
    return static_cast<double>(samples_.size()) / window_;
}

double
WindowReducer::mean() const
{
    if (samples_.empty())
        return 0.0;
    double sum = 0.0;
    for (const auto &[t, v] : samples_)
        sum += v;
    return sum / static_cast<double>(samples_.size());
}

double
WindowReducer::percentile(double p) const
{
    std::vector<double> sorted;
    sorted.reserve(samples_.size());
    for (const auto &[t, v] : samples_)
        sorted.push_back(v);
    std::sort(sorted.begin(), sorted.end());
    return sortedPercentile(sorted, p);
}

// ---------------------------------------------------------------------
// DecayCounter
// ---------------------------------------------------------------------

DecayCounter::DecayCounter(double half_life_seconds)
    : halfLife_(half_life_seconds)
{
}

void
DecayCounter::add(double seconds, double weight)
{
    value_ = valueAt(seconds) + weight;
    last_ = seconds;
}

double
DecayCounter::valueAt(double seconds) const
{
    if (value_ == 0.0)
        return 0.0;
    const double dt = seconds - last_;
    if (dt <= 0.0 || halfLife_ <= 0.0)
        return value_;
    return value_ * std::exp2(-dt / halfLife_);
}

// ---------------------------------------------------------------------
// NodeHealthTracker
// ---------------------------------------------------------------------

void
NodeHealthTracker::configure(size_t num_nodes,
                             const TimeseriesOptions &options)
{
    scoreScale_ = options.penaltyScoreScale;
    nodes_.clear();
    nodes_.reserve(num_nodes);
    for (size_t i = 0; i < num_nodes; ++i) {
        NodeState state;
        state.penalty = DecayCounter(options.penaltyHalfLifeSeconds);
        state.flap = DecayCounter(options.flapHalfLifeSeconds);
        nodes_.push_back(std::move(state));
    }
}

void
NodeHealthTracker::recordRetry(double seconds, size_t node,
                               double backoff_seconds)
{
    // Each retry costs one penalty unit; long backoffs (an already
    // degraded budget) weigh in proportionally so the blend reflects
    // wasted simulated time, not just attempt counts.
    (void)backoff_seconds;
    nodes_.at(node).penalty.add(seconds, 1.0);
}

void
NodeHealthTracker::recordTimeout(double seconds, size_t node)
{
    NodeState &state = nodes_.at(node);
    state.penalty.add(seconds, 4.0);
    state.consecutiveTimeouts += 1;
}

void
NodeHealthTracker::recordSuccess(double seconds, size_t node)
{
    NodeState &state = nodes_.at(node);
    if (state.consecutiveTimeouts == 0)
        return;
    // A success while a timeout streak was open is flap evidence: the
    // node came back between reads, so stretched retry budgets would
    // have paid off.
    state.flap.add(seconds, 1.0);
    state.consecutiveTimeouts = 0;
}

double
NodeHealthTracker::score(size_t node, double seconds) const
{
    const double p = nodes_.at(node).penalty.valueAt(seconds);
    if (p <= 0.0)
        return 1.0;
    if (scoreScale_ <= 0.0)
        return 0.0;
    return std::exp2(-p / scoreScale_);
}

NodeHealthTracker::Band
NodeHealthTracker::band(size_t node, double seconds) const
{
    const NodeState &state = nodes_.at(node);
    if (state.consecutiveTimeouts == 0)
        return Band::kHealthy;
    if (state.flap.valueAt(seconds) > 0.25)
        return Band::kFlapping;
    return Band::kDead;
}

double
NodeHealthTracker::penalty(size_t node, double seconds) const
{
    return nodes_.at(node).penalty.valueAt(seconds);
}

double
NodeHealthTracker::flapEvidence(size_t node, double seconds) const
{
    return nodes_.at(node).flap.valueAt(seconds);
}

size_t
NodeHealthTracker::consecutiveTimeouts(size_t node) const
{
    return nodes_.at(node).consecutiveTimeouts;
}

const char *
NodeHealthTracker::bandName(Band band)
{
    switch (band) {
      case Band::kHealthy:
        return "healthy";
      case Band::kFlapping:
        return "flapping";
      case Band::kDead:
        return "dead";
    }
    return "unknown";
}

// ---------------------------------------------------------------------
// ChunkHeatTable
// ---------------------------------------------------------------------

void
ChunkHeatTable::configure(const TimeseriesOptions &options)
{
    halfLife_ = options.heatHalfLifeSeconds;
    heat_.clear();
}

void
ChunkHeatTable::recordAccess(double seconds, const std::string &object,
                             uint32_t chunk, double weight)
{
    auto key = std::make_pair(object, chunk);
    auto it = heat_.find(key);
    if (it == heat_.end())
        it = heat_.emplace(std::move(key), DecayCounter(halfLife_))
                 .first;
    it->second.add(seconds, weight);
}

double
ChunkHeatTable::heat(const std::string &object, uint32_t chunk,
                     double seconds) const
{
    auto it = heat_.find(std::make_pair(object, chunk));
    if (it == heat_.end())
        return 0.0;
    return it->second.valueAt(seconds);
}

void
ChunkHeatTable::evictObject(const std::string &object)
{
    for (auto it = heat_.begin(); it != heat_.end();) {
        const std::string &key = it->first.first;
        // Match the bare name plus its "@g<gen>" / "#delta" aliases, but
        // never a distinct object that merely shares a prefix.
        bool owned = key.size() >= object.size() &&
                     key.compare(0, object.size(), object) == 0 &&
                     (key.size() == object.size() ||
                      key[object.size()] == '@' ||
                      key[object.size()] == '#');
        if (owned)
            it = heat_.erase(it);
        else
            ++it;
    }
}

std::vector<ChunkHeatTable::HotChunk>
ChunkHeatTable::hottest(double seconds, size_t k) const
{
    std::vector<HotChunk> all;
    all.reserve(heat_.size());
    for (const auto &[key, counter] : heat_)
        all.push_back({key.first, key.second,
                       counter.valueAt(seconds)});
    std::sort(all.begin(), all.end(),
              [](const HotChunk &a, const HotChunk &b) {
                  if (a.heat != b.heat)
                      return a.heat > b.heat;
                  if (a.object != b.object)
                      return a.object < b.object;
                  return a.chunk < b.chunk;
              });
    if (all.size() > k)
        all.resize(k);
    return all;
}

// ---------------------------------------------------------------------
// FlightRecorder
// ---------------------------------------------------------------------

void
FlightRecorder::configure(const TimeseriesOptions &options)
{
    capacity_ = options.flightCapacity;
    maxDumps_ = options.maxFlightDumps;
    clear();
}

void
FlightRecorder::record(double seconds, const char *kind,
                       std::string detail)
{
    if (!enabled_ || capacity_ == 0)
        return;
    Event event{seconds, kind, std::move(detail)};
    if (events_.size() < capacity_) {
        events_.push_back(std::move(event));
        return;
    }
    events_[head_] = std::move(event);
    head_ = (head_ + 1) % capacity_;
}

std::string
FlightRecorder::dump(double seconds, const std::string &reason)
{
    std::string out = "{\"seconds\": " + formatDouble(seconds) +
                      ", \"reason\": \"" + jsonEscape(reason) +
                      "\", \"events\": [";
    // Oldest first: the ring's overwrite cursor is the oldest slot.
    const size_t n = events_.size();
    for (size_t i = 0; i < n; ++i) {
        const Event &e =
            events_[(head_ + i) % (n < capacity_ ? n : capacity_)];
        if (i)
            out += ", ";
        out += "{\"seconds\": " + formatDouble(e.seconds) +
               ", \"kind\": \"" + e.kind + "\"";
        if (!e.detail.empty())
            out += ", " + e.detail;
        out += "}";
    }
    out += "]}";
    if (dumps_.size() < maxDumps_)
        dumps_.push_back(out);
    return out;
}

void
FlightRecorder::clear()
{
    events_.clear();
    dumps_.clear();
    head_ = 0;
}

// ---------------------------------------------------------------------
// Telemetry
// ---------------------------------------------------------------------

Telemetry::Telemetry()
{
    configure(TimeseriesOptions{});
}

void
Telemetry::configure(const TimeseriesOptions &options)
{
    options_ = options;
    health_.configure(health_.numNodes(), options_);
    heat_.configure(options_);
    flight_.configure(options_);
    windows_.clear();
}

WindowReducer &
Telemetry::window(const std::string &name)
{
    auto it = windows_.find(name);
    if (it == windows_.end())
        it = windows_
                 .emplace(name, WindowReducer(options_.windowSeconds))
                 .first;
    return it->second;
}

std::string
Telemetry::toJson(double seconds, size_t hottest_chunks)
{
    std::string out = "{\n  \"now\": " + formatDouble(seconds);

    out += ",\n  \"nodes\": [";
    for (size_t node = 0; node < health_.numNodes(); ++node) {
        if (node)
            out += ", ";
        out += "{\"node\": " + std::to_string(node) +
               ", \"band\": \"" +
               NodeHealthTracker::bandName(health_.band(node, seconds)) +
               "\", \"score\": " +
               formatDouble(health_.score(node, seconds)) +
               ", \"penalty\": " +
               formatDouble(health_.penalty(node, seconds)) +
               ", \"flap\": " +
               formatDouble(health_.flapEvidence(node, seconds)) + "}";
    }
    out += "]";

    out += ",\n  \"chunks\": [";
    const auto hot = heat_.hottest(seconds, hottest_chunks);
    for (size_t i = 0; i < hot.size(); ++i) {
        if (i)
            out += ", ";
        out += "{\"object\": \"" + jsonEscape(hot[i].object) +
               "\", \"chunk\": " + std::to_string(hot[i].chunk) +
               ", \"heat\": " + formatDouble(hot[i].heat) + "}";
    }
    out += "]";

    out += ",\n  \"windows\": [";
    bool first = true;
    for (auto &[name, w] : windows_) {
        w.advance(seconds);
        if (!first)
            out += ", ";
        first = false;
        out += "{\"name\": \"" + jsonEscape(name) +
               "\", \"count\": " + std::to_string(w.count()) +
               ", \"rate\": " + formatDouble(w.rate()) +
               ", \"mean\": " + formatDouble(w.mean()) +
               ", \"p50\": " + formatDouble(w.percentile(50.0)) +
               ", \"p95\": " + formatDouble(w.percentile(95.0)) +
               ", \"p99\": " + formatDouble(w.percentile(99.0)) + "}";
    }
    out += "]";

    out += ",\n  \"flight_dumps\": [";
    const auto &dumps = flight_.dumps();
    for (size_t i = 0; i < dumps.size(); ++i) {
        if (i)
            out += ", ";
        out += dumps[i];
    }
    out += "]\n}\n";
    return out;
}

} // namespace fusion::obs
