#include "delta_log.h"

#include <algorithm>
#include <map>
#include <set>

#include "format/reader.h"
#include "query/eval.h"

namespace fusion::lifecycle {

uint64_t
DeltaLog::append(DeltaSegment segment)
{
    segment.seq = nextSeq_++;
    const uint64_t seq = segment.seq;
    segments_.push_back(std::move(segment));
    return seq;
}

uint64_t
DeltaLog::lastSeq() const
{
    return segments_.empty() ? 0 : segments_.back().seq;
}

void
DeltaLog::dropUpTo(uint64_t seq)
{
    segments_.erase(std::remove_if(segments_.begin(), segments_.end(),
                                   [seq](const DeltaSegment &segment) {
                                       return segment.seq <= seq;
                                   }),
                    segments_.end());
}

DeltaLogStats
DeltaLog::stats() const
{
    DeltaLogStats out;
    out.segments = segments_.size();
    for (const DeltaSegment &segment : segments_) {
        out.bytes += segment.bytes;
        out.rows += segment.rows;
        out.lastSeq = segment.seq;
        if (out.oldestAppendSeconds < 0.0 ||
            segment.appendSeconds < out.oldestAppendSeconds)
            out.oldestAppendSeconds = segment.appendSeconds;
    }
    return out;
}

Result<DeltaScanResult>
scanDeltaSegment(const format::FileMetadata &meta, Slice file,
                 const query::Query &resolved)
{
    auto reader = format::FileReader::open(file);
    if (!reader.isOk())
        return reader.status();
    const format::Schema &schema = meta.schema;
    DeltaScanResult out;

    // Accumulators for the distinct projected columns; std::map keys
    // the iteration order on the column name so the scan-work tally is
    // deterministic for any projection order.
    std::map<std::string, format::ColumnData> selected_by_col;
    for (const auto &name : resolved.projectionColumns()) {
        auto idx = schema.columnIndex(name);
        if (!idx.isOk())
            return idx.status();
        selected_by_col.emplace(
            name, format::ColumnData(schema.column(idx.value()).physical));
    }

    // Same cost shape as ObjectStore::chunkDecodeWork / chunkSelectWork:
    // compressed bytes stream through the decoder, a quarter of the
    // plain bytes are touched per evaluation or selection pass.
    auto decode_work = [](const format::ChunkMeta &chunk) {
        return static_cast<double>(chunk.storedSize) +
               0.25 * static_cast<double>(chunk.plainSize);
    };

    for (size_t rg = 0; rg < meta.numRowGroups(); ++rg) {
        bool may_match = true;
        for (const auto &pred : resolved.filters) {
            auto idx = schema.columnIndex(pred.column);
            if (!idx.isOk())
                return idx.status();
            if (!query::chunkMayMatch(meta.chunk(rg, idx.value()), pred)) {
                may_match = false;
                break;
            }
        }
        if (!may_match)
            continue;

        const uint64_t rows = meta.rowGroups[rg].numRows;
        out.rowsScanned += rows;
        std::set<size_t> touched; // columns charged for decode this rg
        query::Bitmap bitmap(rows, true);
        for (const auto &pred : resolved.filters) {
            size_t col = schema.columnIndex(pred.column).value();
            auto chunk = reader.value().readChunk(rg, col);
            if (!chunk.isOk())
                return chunk.status();
            auto bm =
                query::evalPredicate(chunk.value(), pred.op, pred.literal);
            if (!bm.isOk())
                return bm.status();
            bitmap.intersect(bm.value());
            if (touched.insert(col).second) {
                out.touchedStoredBytes += meta.chunk(rg, col).storedSize;
                out.scanWork += decode_work(meta.chunk(rg, col));
            }
        }

        const uint64_t matched = bitmap.count();
        out.rowsMatched += matched;
        out.rowGroups.push_back(
            {static_cast<uint32_t>(rg), rows,
             rows == 0 ? 0.0
                       : static_cast<double>(matched) /
                             static_cast<double>(rows)});
        if (matched == 0)
            continue;

        for (auto &[name, acc] : selected_by_col) {
            size_t col = schema.columnIndex(name).value();
            auto chunk = reader.value().readChunk(rg, col);
            if (!chunk.isOk())
                return chunk.status();
            if (touched.insert(col).second) {
                out.touchedStoredBytes += meta.chunk(rg, col).storedSize;
                out.scanWork += decode_work(meta.chunk(rg, col));
            } else {
                // Already decoded for a filter: only the select pass.
                out.scanWork +=
                    0.25 *
                    static_cast<double>(meta.chunk(rg, col).plainSize);
            }
            format::ColumnData sel = query::selectRows(chunk.value(), bitmap);
            for (size_t i = 0; i < sel.size(); ++i)
                acc.appendValue(sel.valueAt(i));
        }
    }

    for (const auto &proj : resolved.projections) {
        if (proj.column.empty()) { // COUNT(*)
            out.selected.emplace_back();
            continue;
        }
        const format::ColumnData &acc = selected_by_col.at(proj.column);
        out.selected.push_back(acc);
        if (proj.aggregate == query::AggregateKind::kNone)
            out.clientReplyBytes += acc.plainEncodedSize();
    }
    return out;
}

} // namespace fusion::lifecycle
